#include "util/logging.h"

#include <gtest/gtest.h>

namespace esva {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = log_level(); }
  void TearDown() override { set_log_level(previous_); }

 private:
  LogLevel previous_ = LogLevel::Warn;
};

TEST_F(LoggingTest, DefaultThresholdSuppressesInfo) {
  set_log_level(LogLevel::Warn);
  ::testing::internal::CaptureStderr();
  log_info() << "should be dropped";
  log_warn() << "should appear";
  const std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(captured.find("should be dropped"), std::string::npos);
  EXPECT_NE(captured.find("should appear"), std::string::npos);
}

TEST_F(LoggingTest, LevelPrefixesAreEmitted) {
  set_log_level(LogLevel::Debug);
  ::testing::internal::CaptureStderr();
  log_debug() << "d";
  log_error() << "e";
  const std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("[DEBUG]"), std::string::npos);
  EXPECT_NE(captured.find("[ERROR]"), std::string::npos);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  set_log_level(LogLevel::Off);
  ::testing::internal::CaptureStderr();
  log_error() << "even errors";
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST_F(LoggingTest, StreamingFormatsValues) {
  set_log_level(LogLevel::Info);
  ::testing::internal::CaptureStderr();
  log_info() << "x=" << 42 << " y=" << 2.5;
  const std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("x=42 y=2.5"), std::string::npos);
}

TEST_F(LoggingTest, LevelRoundTrips) {
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
}

}  // namespace
}  // namespace esva
