// Differential fuzz harness for the SoA envelope triage pass
// (core/envelope_store.h): the packed per-server envelope rows must answer
// every probe with *bit-for-bit* ServerTimeline::quick_fit verdicts, stay
// coherent with the timelines through every lifecycle transition (place /
// undo / GC rebuild / fault stub / recovery), and — composed into the
// candidate scan — leave every scan-based allocator's assignment
// byte-identical with the envelope pass on or off, at any thread count,
// cache on or off, under faults or not.
//
// Three layers of evidence:
//   1. timeline-level fuzz: random place/undo interleavings on raw
//      ServerTimelines, classify() vs quick_fit() per server per probe, and
//      decided verdicts cross-checked against can_fit();
//   2. lifecycle property fuzz: EnvelopeStore::debug_validate() after every
//      ClusterState transition (place, advance_to, ensure_horizon, fail,
//      drain, recover), eager-rebuild on and off;
//   3. end-to-end identity: full allocations and chaos replays, envelope on
//      vs off — assignments, energies, and fault counters must match exactly.
//
// ESVA_FUZZ_QUICK=1 (set by ctest in Debug CI; see tests/CMakeLists.txt)
// shrinks iteration counts so sanitizer jobs fit their time budget. The
// properties checked are identical in both modes.

#include "core/envelope_store.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "cluster/catalog.h"
#include "cluster/timeline.h"
#include "core/allocation.h"
#include "core/candidate_scan.h"
#include "core/fault_plan.h"
#include "core/streaming.h"
#include "sim/replay.h"
#include "test_util.h"
#include "util/rng.h"
#include "workload/arrival_stream.h"
#include "workload/generator.h"

namespace esva {
namespace {

/// True when ESVA_FUZZ_QUICK is set to anything non-empty except "0" — the
/// Debug-CI and sanitizer budget (tests/CMakeLists.txt wires it through
/// ctest). The properties checked are identical; only iteration counts and
/// sweep widths shrink.
bool fuzz_quick() {
  const char* env = std::getenv("ESVA_FUZZ_QUICK");
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}

/// Iteration budget: `full` normally, `quick` under ESVA_FUZZ_QUICK.
int fuzz_iters(int full, int quick) { return fuzz_quick() ? quick : full; }

constexpr int kNumVms = 220;
constexpr int kNumServers = 44;

const std::vector<std::string>& scan_allocators() {
  static const std::vector<std::string> kNames = {
      "min-incremental", "best-fit-cpu", "lowest-idle-power",
      "dot-product-fit"};
  return kNames;
}

std::vector<ServerSpec> make_fleet(int num_servers) {
  std::vector<ServerSpec> servers;
  const auto& types = all_server_types();
  for (int i = 0; i < num_servers; ++i) {
    const double transition_time = 0.5 + static_cast<double>(i % 3);
    const std::size_t type_index =
        types.size() - 1 - static_cast<std::size_t>(i) % types.size();
    servers.push_back(make_server(types[type_index], i, transition_time));
  }
  return servers;
}

WorkloadConfig workload_config() {
  WorkloadConfig config;
  config.num_vms = kNumVms;
  config.mean_interarrival = 1.5;
  config.mean_duration = 30.0;
  config.vm_types = all_vm_types();
  return config;
}

ProblemInstance stable_instance(std::uint64_t seed) {
  Rng rng(seed);
  return make_problem(generate_workload(workload_config(), rng),
                      make_fleet(kNumServers));
}

ProblemInstance profiled_instance(std::uint64_t seed) {
  Rng rng(seed);
  return make_problem(
      generate_bursty_workload(workload_config(), /*phases=*/4,
                               /*valley_factor=*/0.45, rng),
      make_fleet(kNumServers));
}

/// A random valid probe VM, possibly reaching outside a timeline's window
/// (below an advanced base or past the horizon — the window comparisons are
/// part of the verdict) and possibly profiled (profiled probes disable the
/// floor-based quick-reject; classify must reproduce that exactly).
VmSpec random_probe(Rng& rng, Time horizon) {
  const Time start =
      static_cast<Time>(rng.uniform_int(1, static_cast<std::int64_t>(horizon)));
  const Time end = start + static_cast<Time>(rng.uniform_int(0, 40));
  VmSpec vm = testing::vm(/*id=*/9000, start, end,
                          rng.uniform_double(0.1, 6.0),
                          rng.uniform_double(0.1, 6.0));
  if (rng.bernoulli(0.3)) {
    std::vector<Resources> profile(static_cast<std::size_t>(vm.duration()));
    for (Resources& r : profile)
      r = {rng.uniform_double(0.1, 6.0), rng.uniform_double(0.1, 6.0)};
    vm.set_profile(std::move(profile));
  }
  return vm;
}

// --- layer 1: classify() is quick_fit(), bit for bit ------------------------

// Random place/undo interleavings on raw timelines with a manually refreshed
// store: every probe's classify() verdict equals quick_fit() per server, and
// every *decided* verdict is consistent with the exact can_fit() answer
// (kFits implies can_fit, kCannotFit implies !can_fit) — so the scan's
// segment-tree fallback only ever runs on genuinely undecided servers.
TEST(EnvelopeFuzz, ClassifyMatchesQuickFitUnderRandomInterleavings) {
  const int rounds = fuzz_iters(80, 10);
  const Time horizon = 160;
  Rng rng(20260807);
  for (int round = 0; round < rounds; ++round) {
    std::vector<ServerTimeline> timelines;
    const std::vector<ServerSpec> fleet = make_fleet(6);
    // Stagger window bases so probes exercise the start-below-base reject
    // (the rolling-GC shape) alongside the end-past-horizon one.
    Time base = 1;
    for (const ServerSpec& spec : fleet) {
      timelines.emplace_back(spec, base, horizon);
      base = (base == 1) ? 25 : 1;
    }
    EnvelopeStore store;
    store.reset(timelines);

    // LIFO undo stacks, one per server (the timeline contract).
    struct Placed {
      ServerTimeline::PlaceRecord record;
      VmSpec vm;
    };
    std::vector<std::vector<Placed>> placed(timelines.size());

    const int ops = fuzz_iters(200, 40);
    std::vector<std::uint8_t> verdicts(timelines.size());
    for (int op = 0; op < ops; ++op) {
      const std::size_t i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(timelines.size()) - 1));
      if (rng.bernoulli(0.35) && !placed[i].empty()) {
        timelines[i].undo(placed[i].back().record, placed[i].back().vm);
        placed[i].pop_back();
        store.refresh(i, timelines[i]);
      } else {
        VmSpec candidate = random_probe(rng, horizon);
        if (candidate.start >= 1 && candidate.end <= horizon &&
            timelines[i].can_fit(candidate)) {
          placed[i].push_back({timelines[i].place(candidate), candidate});
          store.refresh(i, timelines[i]);
        }
      }
      ASSERT_TRUE(store.debug_validate(timelines)) << "round " << round;

      // Probe the whole fleet with a handful of random VMs.
      for (int probe = 0; probe < 4; ++probe) {
        const VmSpec vm = random_probe(rng, horizon);
        store.classify(EnvelopeStore::probe_of(vm), verdicts.data());
        for (std::size_t s = 0; s < timelines.size(); ++s) {
          const QuickFit expected = timelines[s].quick_fit(vm);
          ASSERT_EQ(static_cast<QuickFit>(verdicts[s]), expected)
              << "round " << round << " op " << op << " server " << s
              << " vm [" << vm.start << "," << vm.end << "] cpu "
              << vm.demand.cpu << " mem " << vm.demand.mem
              << (vm.has_profile() ? " (profiled)" : "");
          if (expected == QuickFit::kFits) {
            ASSERT_TRUE(timelines[s].can_fit(vm)) << "server " << s;
          }
          if (expected == QuickFit::kCannotFit) {
            ASSERT_FALSE(timelines[s].can_fit(vm)) << "server " << s;
          }
        }
      }
    }
  }
}

// probe_of must mirror the quick_fit inputs exactly: peak demand, inclusive
// window, and the has-profile flag that gates the floor-based reject.
TEST(EnvelopeStoreTest, ProbeOfCarriesPeakDemandWindowAndProfileFlag) {
  VmSpec stable = testing::vm(1, 5, 9, 2.5, 1.25);
  const EnvelopeStore::Probe p = EnvelopeStore::probe_of(stable);
  EXPECT_EQ(p.cpu, 2.5);
  EXPECT_EQ(p.mem, 1.25);
  EXPECT_EQ(p.start, 5);
  EXPECT_EQ(p.end, 9);
  EXPECT_FALSE(p.profiled);

  VmSpec profiled = testing::vm(2, 5, 7, 1.0, 1.0);
  profiled.set_profile({{1.0, 0.5}, {3.0, 1.0}, {2.0, 2.0}});
  const EnvelopeStore::Probe q = EnvelopeStore::probe_of(profiled);
  EXPECT_EQ(q.cpu, 3.0);  // set_profile lifts demand to the peak
  EXPECT_EQ(q.mem, 2.0);
  EXPECT_TRUE(q.profiled);
}

// --- layer 2: envelope/timeline coherence across the lifecycle --------------

// debug_validate after *every* ClusterState transition, with the GC
// amortization both default and eager (eager forces a rebuild — and thus a
// refresh — on every advance tick, the worst case for staleness bugs).
TEST(EnvelopeCoherence, DebugValidateSurvivesRandomLifecycle) {
  const int rounds = fuzz_iters(25, 4);
  for (const bool eager : {false, true}) {
    Rng rng(eager ? 404u : 303u);
    for (int round = 0; round < rounds; ++round) {
      ClusterState cluster(make_fleet(8), /*initial_horizon=*/0);
      cluster.set_eager_rebuild(eager);
      const auto validate = [&](const char* when) {
        ASSERT_TRUE(cluster.envelopes().debug_validate(cluster.timelines()))
            << when << " round " << round << (eager ? " (eager)" : "");
        for (std::size_t i = 0; i < cluster.num_servers(); ++i)
          ASSERT_EQ(cluster.envelopes().epoch(i),
                    cluster.timelines()[i].epoch())
              << when << " server " << i;
      };
      validate("ctor");

      Time frontier = 1;
      const int ops = fuzz_iters(150, 30);
      for (int op = 0; op < ops; ++op) {
        const std::size_t i = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(cluster.num_servers()) - 1));
        switch (rng.uniform_int(0, 5)) {
          case 0: {  // grow the window
            cluster.ensure_horizon(frontier +
                                   static_cast<Time>(rng.uniform_int(1, 300)));
            validate("ensure_horizon");
            break;
          }
          case 1: {  // place a random feasible VM on server i
            if (!cluster.placeable(i)) break;
            VmSpec vm = random_probe(rng, frontier + 60);
            if (vm.start < frontier || vm.end < vm.start) break;
            cluster.ensure_horizon(vm.end);
            validate("ensure_horizon(place)");
            if (cluster.timelines()[i].can_fit(vm)) {
              cluster.place(i, vm);
              validate("place");
            }
            break;
          }
          case 2: {  // advance the frontier (retire + amortized rebuild)
            frontier += static_cast<Time>(rng.uniform_int(1, 40));
            cluster.ensure_horizon(frontier);
            cluster.advance_to(frontier);
            validate("advance_to");
            break;
          }
          case 3: {
            cluster.fail_server(i);  // displaced VMs dropped: store-level test
            validate("fail_server");
            break;
          }
          case 4: {
            if (cluster.health(i) == ServerHealth::kUp) cluster.drain_server(i);
            validate("drain_server");
            break;
          }
          case 5: {
            cluster.recover_server(i);
            validate("recover_server");
            break;
          }
        }
      }
    }
  }
}

// debug_validate must actually discriminate: a stale row (timeline mutated
// behind the store's back) is detected.
TEST(EnvelopeCoherence, DebugValidateDetectsStaleRows) {
  std::vector<ServerTimeline> timelines;
  timelines.emplace_back(testing::basic_server(0), /*horizon=*/50);
  EnvelopeStore store;
  store.reset(timelines);
  ASSERT_TRUE(store.debug_validate(timelines));
  timelines[0].place(testing::vm(1, 5, 10, 2.0, 2.0));  // no refresh
  EXPECT_FALSE(store.debug_validate(timelines));
  store.refresh(0, timelines[0]);
  EXPECT_TRUE(store.debug_validate(timelines));
  // Fleet-size mismatch is a validation failure, not UB.
  timelines.emplace_back(testing::basic_server(1), /*horizon=*/50);
  EXPECT_FALSE(store.debug_validate(timelines));
}

// --- layer 3: end-to-end byte identity, envelope on vs off ------------------

Allocation run_alloc(const std::string& name, const ProblemInstance& problem,
                     int threads, bool cache, bool envelope) {
  AllocatorPtr allocator = make_allocator(name);
  ScanConfig scan;
  scan.threads = threads;
  scan.cache = cache;
  scan.envelope = envelope;
  allocator->set_scan_config(scan);
  Rng rng(7);
  return allocator->allocate(problem, rng);
}

TEST(EnvelopeDifferential, OnOffByteIdenticalAcrossThreadsAndCache) {
  const int seeds = fuzz_iters(2, 1);
  const std::vector<int> thread_counts =
      fuzz_quick() ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};
  for (int s = 0; s < seeds; ++s) {
    const std::uint64_t seed = 11u + 18u * static_cast<std::uint64_t>(s);
    for (const bool profiled : {false, true}) {
      const ProblemInstance problem =
          profiled ? profiled_instance(seed) : stable_instance(seed);
      for (const std::string& name : scan_allocators()) {
        // The reference: envelope off = the historical quick_fit loop.
        const Allocation reference =
            run_alloc(name, problem, /*threads=*/1, /*cache=*/false,
                      /*envelope=*/false);
        for (const int threads : thread_counts) {
          for (const bool cache : {false, true}) {
            const Allocation with_envelope =
                run_alloc(name, problem, threads, cache, /*envelope=*/true);
            ASSERT_EQ(reference.assignment, with_envelope.assignment)
                << name << " threads=" << threads << " cache=" << cache
                << " seed=" << seed
                << (profiled ? " (profiled)" : " (stable)");
            const Allocation without_envelope =
                run_alloc(name, problem, threads, cache, /*envelope=*/false);
            ASSERT_EQ(reference.assignment, without_envelope.assignment)
                << name << " threads=" << threads << " cache=" << cache;
          }
        }
        // Same double bits in, same bits out: energies match exactly.
        EXPECT_EQ(
            evaluate_cost(problem, reference).total(),
            evaluate_cost(problem, run_alloc(name, problem, 1, false, true))
                .total())
            << name;
      }
    }
  }
}

// The cache's counters evolve from the same quick verdicts either way, so
// its warmup self-disable judgment cannot diverge envelope on vs off.
TEST(EnvelopeDifferential, CacheAutoDisableJudgmentUnchanged) {
  Rng rng(77);
  const ProblemInstance problem =
      make_problem(generate_workload(workload_config(), rng), make_fleet(8));
  const auto run_cached = [&](bool envelope) {
    AllocatorPtr allocator = make_allocator("min-incremental");
    ScanConfig scan;
    scan.cache = true;
    scan.cache_warmup_probes = 64;
    scan.envelope = envelope;
    allocator->set_scan_config(scan);
    Rng run_rng(7);
    return allocator->allocate(problem, run_rng);
  };
  EXPECT_EQ(run_cached(true).assignment, run_cached(false).assignment);
}

ReplayReport replay_chaos(const std::string& name,
                          const ProblemInstance& problem,
                          const FaultPlan& plan, bool envelope) {
  AllocatorPtr allocator = make_allocator(name);
  ScanConfig scan;
  scan.envelope = envelope;
  allocator->set_scan_config(scan);
  std::unique_ptr<PlacementPolicy> policy = allocator->make_policy();
  EXPECT_NE(policy, nullptr) << name;
  Rng rng(7);
  VectorArrivalStream arrivals(problem.vms);
  ReplayOptions options;
  options.faults = &plan;
  options.retry.max_attempts = 3;
  return replay_stream(arrivals, problem.servers, *policy, rng, options);
}

// Chaos stream: failures stub timelines, recoveries rebuild them, retries
// interleave extra scans — the envelope rows must track every transition, so
// assignments, energies, and every fault counter match envelope on vs off.
TEST(EnvelopeDifferential, ChaosReplayByteIdentical) {
  const ProblemInstance problem = stable_instance(31);
  ChaosConfig chaos;
  chaos.num_servers = static_cast<std::size_t>(kNumServers);
  chaos.failures = 6;
  chaos.window_lo = 5;
  chaos.window_hi = 200;
  chaos.mean_repair = 40;
  Rng plan_rng(101);
  const FaultPlan plan = random_fault_plan(chaos, plan_rng);
  for (const std::string& name :
       {std::string("min-incremental"), std::string("lowest-idle-power")}) {
    const ReplayReport on = replay_chaos(name, problem, plan, true);
    const ReplayReport off = replay_chaos(name, problem, plan, false);
    ASSERT_EQ(on.assignment, off.assignment) << name;
    EXPECT_EQ(on.total_energy, off.total_energy) << name;
    EXPECT_EQ(on.placed, off.placed) << name;
    EXPECT_EQ(on.rejected, off.rejected) << name;
    EXPECT_EQ(on.faults.displaced, off.faults.displaced) << name;
    EXPECT_EQ(on.faults.evacuated, off.faults.evacuated) << name;
    EXPECT_EQ(on.faults.retries, off.faults.retries) << name;
    EXPECT_EQ(on.faults.rejected_final, off.faults.rejected_final) << name;
    EXPECT_EQ(on.faults.downtime_units, off.faults.downtime_units) << name;
    EXPECT_GT(on.faults.fault_events, 0) << name;
  }
}

}  // namespace
}  // namespace esva
