#include "sim/experiment.h"

#include <gtest/gtest.h>

namespace esva {
namespace {

ExperimentConfig quick_config(int runs = 3) {
  ExperimentConfig config;
  config.runs = runs;
  config.seed = 7;
  return config;
}

TEST(Experiment, ProducesOneAggregatePerAllocator) {
  const Scenario scenario = fig2_scenario(60, 2.0);
  const PointOutcome outcome = run_point(scenario, quick_config());
  ASSERT_EQ(outcome.allocators.size(), 2u);
  EXPECT_EQ(outcome.allocators[0].name, "min-incremental");
  EXPECT_EQ(outcome.allocators[1].name, "ffps");
  EXPECT_EQ(outcome.baseline_name, "ffps");
}

TEST(Experiment, AggregatesHaveOneSamplePerRun) {
  const Scenario scenario = fig2_scenario(60, 2.0);
  const PointOutcome outcome = run_point(scenario, quick_config(4));
  for (const AllocatorAggregate& agg : outcome.allocators) {
    EXPECT_EQ(agg.total_cost.count(), 4u) << agg.name;
    EXPECT_EQ(agg.cpu_util.count(), 4u) << agg.name;
  }
  // Reduction ratios only exist for non-baseline allocators.
  EXPECT_EQ(outcome.by_name("min-incremental").reduction_vs_baseline.count(),
            4u);
  EXPECT_EQ(outcome.by_name("ffps").reduction_vs_baseline.count(), 0u);
}

TEST(Experiment, SameSeedReproducesExactly) {
  const Scenario scenario = fig2_scenario(60, 2.0);
  const PointOutcome a = run_point(scenario, quick_config());
  const PointOutcome b = run_point(scenario, quick_config());
  for (std::size_t k = 0; k < a.allocators.size(); ++k) {
    EXPECT_DOUBLE_EQ(a.allocators[k].total_cost.mean(),
                     b.allocators[k].total_cost.mean());
    EXPECT_DOUBLE_EQ(a.allocators[k].cpu_util.mean(),
                     b.allocators[k].cpu_util.mean());
  }
}

TEST(Experiment, DifferentSeedsDiffer) {
  const Scenario scenario = fig2_scenario(60, 2.0);
  ExperimentConfig c1 = quick_config();
  ExperimentConfig c2 = quick_config();
  c2.seed = 8;
  const PointOutcome a = run_point(scenario, c1);
  const PointOutcome b = run_point(scenario, c2);
  EXPECT_NE(a.allocators[0].total_cost.mean(),
            b.allocators[0].total_cost.mean());
}

TEST(Experiment, HeadlineReductionIsPositiveAtLightLoad) {
  // The paper's central claim, at a sweep point where it is most pronounced
  // (long inter-arrival, light load).
  const Scenario scenario = fig2_scenario(100, 8.0);
  const PointOutcome outcome = run_point(scenario, quick_config(5));
  EXPECT_GT(outcome.headline_reduction(), 0.0);
}

TEST(Experiment, BaselineLoadsAreExposed) {
  const Scenario scenario = fig2_scenario(60, 1.0);
  const PointOutcome outcome = run_point(scenario, quick_config());
  EXPECT_GT(outcome.baseline_cpu_load(), 0.0);
  EXPECT_LE(outcome.baseline_cpu_load(), 1.0);
  EXPECT_GT(outcome.baseline_mem_load(), 0.0);
  EXPECT_LE(outcome.baseline_mem_load(), 1.0);
}

TEST(Experiment, ByNameThrowsOnUnknown) {
  const Scenario scenario = fig2_scenario(40, 2.0);
  const PointOutcome outcome = run_point(scenario, quick_config(1));
  EXPECT_THROW(outcome.by_name("nope"), std::invalid_argument);
}

TEST(Experiment, SupportsCustomAllocatorSets) {
  ExperimentConfig config = quick_config(2);
  config.allocator_names = {"min-incremental", "best-fit-cpu", "ffps"};
  const Scenario scenario = fig2_scenario(50, 2.0);
  const PointOutcome outcome = run_point(scenario, config);
  ASSERT_EQ(outcome.allocators.size(), 3u);
  EXPECT_EQ(outcome.by_name("best-fit-cpu").reduction_vs_baseline.count(), 2u);
}

TEST(Experiment, AllAllocatorsSeeTheSameInstancePerRun) {
  // Paired comparison: with one run and a deterministic allocator listed
  // twice under different names... not possible; instead check that two
  // deterministic allocators measure the same total when they are the same
  // algorithm (min-incremental listed once) across two configs sharing the
  // seed — instance generation must not depend on the allocator list order.
  ExperimentConfig c1 = quick_config(2);
  c1.allocator_names = {"min-incremental", "ffps"};
  ExperimentConfig c2 = quick_config(2);
  c2.allocator_names = {"min-incremental", "ffps", "best-fit-cpu"};
  const Scenario scenario = fig2_scenario(50, 2.0);
  const PointOutcome a = run_point(scenario, c1);
  const PointOutcome b = run_point(scenario, c2);
  // min-incremental is deterministic and sees the same instances (the extra
  // allocator draws its rng *after* the shared ones).
  EXPECT_DOUBLE_EQ(a.by_name("min-incremental").total_cost.mean(),
                   b.by_name("min-incremental").total_cost.mean());
}

}  // namespace
}  // namespace esva
