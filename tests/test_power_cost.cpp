// Tests of the power model (Eqs. 1–3) and the cost model (Eqs. 15–17),
// including the incremental-delta fast path and the monotonicity lemma that
// the exact solver's bound relies on.

#include <gtest/gtest.h>

#include "cluster/timeline.h"
#include "core/cost_model.h"
#include "core/power_model.h"
#include "core/segments.h"
#include "test_util.h"
#include "util/rng.h"

namespace esva {
namespace {

using testing::basic_server;
using testing::server;
using testing::vm;

// basic_server(): 10 CPU / 10 GiB, P_idle 100 W, P_peak 200 W, alpha = 200.

TEST(PowerModel, RunCostEq3) {
  // W_ij = P¹ · cpu · duration = 10 W/CU × 4 CU × 11 min.
  EXPECT_DOUBLE_EQ(run_cost(basic_server(), vm(0, 10, 20, 4.0, 1.0)), 440.0);
}

TEST(PowerModel, PowerAtUsage) {
  const ServerSpec s = basic_server();
  EXPECT_DOUBLE_EQ(power_at_usage(s, 0.0), 100.0);
  EXPECT_DOUBLE_EQ(power_at_usage(s, 10.0), 200.0);
  EXPECT_DOUBLE_EQ(power_at_usage(s, 2.5), 125.0);
}

TEST(Segments, BusyUnionMergesVmIntervals) {
  const IntervalSet busy =
      busy_union({vm(0, 1, 5), vm(1, 4, 8), vm(2, 12, 14)});
  EXPECT_EQ(busy.intervals(), (std::vector<Interval>{{1, 8}, {12, 14}}));
}

TEST(Segments, GapPolicyThreshold) {
  // alpha = 200, P_idle = 100: stay active iff gap <= 2.
  const ServerSpec s = basic_server();
  EXPECT_TRUE(stays_active_through_gap(s, 1));
  EXPECT_TRUE(stays_active_through_gap(s, 2));  // tie -> stay active
  EXPECT_FALSE(stays_active_through_gap(s, 3));
}

TEST(Segments, ActiveIntervalsBridgeShortGapsOnly) {
  const ServerSpec s = basic_server();
  IntervalSet busy;
  busy.insert(1, 5);
  busy.insert(8, 10);   // gap of 2 -> bridged
  busy.insert(20, 25);  // gap of 9 -> power cycle
  const auto actives = active_intervals(busy, s);
  EXPECT_EQ(actives, (std::vector<Interval>{{1, 10}, {20, 25}}));
  EXPECT_EQ(transition_count(busy, s), 2);
}

TEST(GapCost, MinOfIdleAndTransition) {
  const ServerSpec s = basic_server();
  EXPECT_DOUBLE_EQ(gap_cost(s, 1), 100.0);   // idle through
  EXPECT_DOUBLE_EQ(gap_cost(s, 2), 200.0);   // tie
  EXPECT_DOUBLE_EQ(gap_cost(s, 50), 200.0);  // power cycle
}

TEST(StructureCost, EmptyServerCostsNothing) {
  EXPECT_DOUBLE_EQ(structure_cost(IntervalSet{}, basic_server()), 0.0);
}

TEST(StructureCost, SingleSegmentChargesIdleAndInitialTransition) {
  IntervalSet busy;
  busy.insert(5, 14);  // 10 units
  // 100 W × 10 + alpha 200 (first switch-on).
  EXPECT_DOUBLE_EQ(structure_cost(busy, basic_server()), 1200.0);
}

TEST(StructureCost, LiteralEq17OmitsInitialTransition) {
  IntervalSet busy;
  busy.insert(5, 14);
  const CostOptions literal{.charge_initial_transition = false};
  EXPECT_DOUBLE_EQ(structure_cost(busy, basic_server(), literal), 1000.0);
}

TEST(StructureCost, ShortGapChargedAsIdle) {
  IntervalSet busy;
  busy.insert(1, 5);
  busy.insert(8, 10);  // gap {6,7}: 2 units, 200 == alpha, stays active
  // idle: (5 + 3 + 2) × 100 = 1000; transitions: 1 × 200.
  EXPECT_DOUBLE_EQ(structure_cost(busy, basic_server()), 1200.0);
  const CostBreakdown bd = structure_breakdown(busy, basic_server());
  EXPECT_DOUBLE_EQ(bd.idle, 1000.0);
  EXPECT_DOUBLE_EQ(bd.transition, 200.0);
  EXPECT_DOUBLE_EQ(bd.run, 0.0);
}

TEST(StructureCost, LongGapChargedAsTransition) {
  IntervalSet busy;
  busy.insert(1, 5);
  busy.insert(50, 59);  // gap of 44 -> power cycle (alpha = 200 < 4400)
  // idle: (5 + 10) × 100; transitions: initial + one re-switch-on.
  const CostBreakdown bd = structure_breakdown(busy, basic_server());
  EXPECT_DOUBLE_EQ(bd.idle, 1500.0);
  EXPECT_DOUBLE_EQ(bd.transition, 400.0);
}

TEST(StructureCost, LeadingAndTrailingIdleAreFree) {
  // The server is in power-saving before its first and after its last busy
  // segment; shifting a segment in time must not change cost.
  IntervalSet early;
  early.insert(1, 10);
  IntervalSet late;
  late.insert(500, 509);
  EXPECT_DOUBLE_EQ(structure_cost(early, basic_server()),
                   structure_cost(late, basic_server()));
}

TEST(ServerCost, FullEq17HandComputed) {
  // VM A [1,5] 2 CPU, VM B [8,10] 5 CPU on the basic server.
  // run: 10·2·5 + 10·5·3 = 250; idle: (5 + 2 + 3)·100 = 1000 (the gap of 2 is
  // bridged at tie cost); transitions: the initial 200. Total 1450.
  const Energy cost =
      server_cost(basic_server(), {vm(0, 1, 5, 2.0, 1.0), vm(1, 8, 10, 5.0, 1.0)});
  EXPECT_DOUBLE_EQ(cost, 1450.0);
}

TEST(IncrementalCost, FirstVmPaysTransitionIdleAndRun) {
  ServerTimeline timeline(basic_server(), 100);
  const VmSpec first = vm(0, 10, 19, 3.0, 1.0);
  // run 10·3·10 = 300, idle 100·10 = 1000, transition 200.
  EXPECT_DOUBLE_EQ(incremental_cost(timeline, first), 1500.0);
}

TEST(IncrementalCost, OverlappingVmPaysOnlyRunCost) {
  ServerTimeline timeline(basic_server(), 100);
  timeline.place(vm(0, 10, 19, 3.0, 1.0));
  // Fully inside the existing busy segment: only W is added.
  EXPECT_DOUBLE_EQ(incremental_cost(timeline, vm(1, 12, 17, 2.0, 1.0)),
                   10.0 * 2.0 * 6.0);
}

TEST(IncrementalCost, ExtendingSegmentAddsIdleTime) {
  ServerTimeline timeline(basic_server(), 100);
  timeline.place(vm(0, 10, 19, 3.0, 1.0));
  // [15, 25] extends the busy segment by 6 units: run + 6·100 idle.
  EXPECT_DOUBLE_EQ(incremental_cost(timeline, vm(1, 15, 25, 1.0, 1.0)),
                   10.0 * 11.0 + 600.0);
}

TEST(IncrementalCost, BridgingALongGapRefundsTheSecondTransition) {
  ServerTimeline timeline(basic_server(), 200);
  timeline.place(vm(0, 1, 10));
  timeline.place(vm(1, 100, 110));
  // Before: two power cycles. A VM covering [5, 104] merges everything:
  // structure delta = idle for the 89 gap units (+0 new busy outside) minus
  // the refunded alpha of the second switch-on.
  const VmSpec bridge = vm(2, 5, 104, 1.0, 1.0);
  const Energy expected_delta =
      run_cost(basic_server(), bridge) + 89.0 * 100.0 - 200.0;
  EXPECT_DOUBLE_EQ(incremental_cost(timeline, bridge), expected_delta);
}

// --- Properties -----------------------------------------------------------

ServerSpec random_server(Rng& rng, ServerId id) {
  const double cpu = rng.uniform_double(8.0, 64.0);
  const double p_idle = rng.uniform_double(50.0, 250.0);
  const double p_peak = p_idle + rng.uniform_double(10.0, 300.0);
  return server(id, cpu, 64.0, p_idle, p_peak,
                rng.uniform_double(0.0, 3.0));
}

TEST(CostModelProperty, DeltaFastPathMatchesFullRecompute) {
  Rng rng(2024);
  for (int trial = 0; trial < 500; ++trial) {
    const ServerSpec spec = random_server(rng, 0);
    IntervalSet busy;
    const int existing = static_cast<int>(rng.uniform_int(0, 8));
    for (int k = 0; k < existing; ++k) {
      const Time lo = static_cast<Time>(rng.uniform_int(1, 150));
      const Time hi = static_cast<Time>(
          rng.uniform_int(lo, std::min<Time>(160, lo + 30)));
      busy.insert(lo, hi);
    }
    const Time lo = static_cast<Time>(rng.uniform_int(1, 150));
    const Time hi = static_cast<Time>(
        rng.uniform_int(lo, std::min<Time>(160, lo + 40)));

    for (bool charge_initial : {true, false}) {
      const CostOptions opts{.charge_initial_transition = charge_initial};
      const Energy before = structure_cost(busy, spec, opts);
      const Energy fast_delta = structure_cost_delta(busy, lo, hi, spec, opts);
      IntervalSet after = busy;
      after.insert(lo, hi);
      const Energy recomputed = structure_cost(after, spec, opts) - before;
      ASSERT_NEAR(fast_delta, recomputed, 1e-6)
          << "trial " << trial << " charge_initial=" << charge_initial;
    }
  }
}

TEST(CostModelProperty, StructureCostIsMonotoneUnderInsertion) {
  // The branch-and-bound lower bound is admissible only if adding a VM
  // interval never lowers the optimal-policy structure cost (DESIGN.md §1).
  Rng rng(4096);
  for (int trial = 0; trial < 500; ++trial) {
    const ServerSpec spec = random_server(rng, 0);
    IntervalSet busy;
    const int existing = static_cast<int>(rng.uniform_int(0, 8));
    for (int k = 0; k < existing; ++k) {
      const Time lo = static_cast<Time>(rng.uniform_int(1, 150));
      busy.insert(lo, static_cast<Time>(
                          rng.uniform_int(lo, std::min<Time>(160, lo + 25))));
    }
    const Time lo = static_cast<Time>(rng.uniform_int(1, 150));
    const Time hi = static_cast<Time>(
        rng.uniform_int(lo, std::min<Time>(160, lo + 50)));
    const Energy delta = structure_cost_delta(busy, lo, hi, spec);
    ASSERT_GE(delta, -1e-9) << "trial " << trial;
  }
}

TEST(CostModelProperty, BreakdownComponentsSumToTotal) {
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const ServerSpec spec = random_server(rng, 0);
    IntervalSet busy;
    const int existing = static_cast<int>(rng.uniform_int(1, 8));
    for (int k = 0; k < existing; ++k) {
      const Time lo = static_cast<Time>(rng.uniform_int(1, 150));
      busy.insert(lo, static_cast<Time>(
                          rng.uniform_int(lo, std::min<Time>(160, lo + 25))));
    }
    const CostBreakdown bd = structure_breakdown(busy, spec);
    ASSERT_NEAR(bd.total(), structure_cost(busy, spec), 1e-9);
    ASSERT_GE(bd.idle, 0.0);
    ASSERT_GE(bd.transition, 0.0);
    ASSERT_EQ(bd.run, 0.0);  // structure has no run component
  }
}

}  // namespace
}  // namespace esva
