#include "util/cli.h"

#include <gtest/gtest.h>

namespace esva {
namespace {

CliParser make_parser() {
  CliParser parser("test program");
  parser.add_int("vms", 100, "number of VMs");
  parser.add_double("interarrival", 1.5, "mean inter-arrival");
  parser.add_string("csv", "", "csv output path");
  parser.add_bool("verbose", "enable verbose logging");
  return parser;
}

TEST(CliParser, DefaultsWithNoArgs) {
  auto parser = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(parser.parse(1, argv));
  EXPECT_EQ(parser.get_int("vms"), 100);
  EXPECT_DOUBLE_EQ(parser.get_double("interarrival"), 1.5);
  EXPECT_EQ(parser.get_string("csv"), "");
  EXPECT_FALSE(parser.get_bool("verbose"));
}

TEST(CliParser, ParsesSeparatedValues) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--vms", "250", "--interarrival", "4.0"};
  ASSERT_TRUE(parser.parse(5, argv));
  EXPECT_EQ(parser.get_int("vms"), 250);
  EXPECT_DOUBLE_EQ(parser.get_double("interarrival"), 4.0);
}

TEST(CliParser, ParsesEqualsForm) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--vms=7", "--csv=out.csv"};
  ASSERT_TRUE(parser.parse(3, argv));
  EXPECT_EQ(parser.get_int("vms"), 7);
  EXPECT_EQ(parser.get_string("csv"), "out.csv");
}

TEST(CliParser, BoolSwitchAndExplicitFalse) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(parser.parse(2, argv));
  EXPECT_TRUE(parser.get_bool("verbose"));

  auto parser2 = make_parser();
  const char* argv2[] = {"prog", "--verbose=false"};
  ASSERT_TRUE(parser2.parse(2, argv2));
  EXPECT_FALSE(parser2.get_bool("verbose"));
}

TEST(CliParser, UnknownFlagFails) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_FALSE(parser.parse(3, argv));
  EXPECT_TRUE(parser.parse_error());
}

TEST(CliParser, MissingValueFails) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--vms"};
  EXPECT_FALSE(parser.parse(2, argv));
  EXPECT_TRUE(parser.parse_error());
}

TEST(CliParser, MalformedNumberFails) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--vms", "not-a-number"};
  EXPECT_FALSE(parser.parse(3, argv));
  EXPECT_TRUE(parser.parse_error());
}

TEST(CliParser, HelpReturnsFalseWithoutError) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(parser.parse(2, argv));
  EXPECT_FALSE(parser.parse_error());
}

TEST(CliParser, PositionalArgsCollected) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "trace.csv", "--vms", "5", "other"};
  ASSERT_TRUE(parser.parse(5, argv));
  EXPECT_EQ(parser.positional(),
            (std::vector<std::string>{"trace.csv", "other"}));
}

TEST(CliParser, TypeMismatchThrows) {
  auto parser = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(parser.parse(1, argv));
  EXPECT_THROW(parser.get_double("vms"), std::logic_error);
  EXPECT_THROW(parser.get_int("nonexistent"), std::logic_error);
}

TEST(CliParser, UsageMentionsEveryFlag) {
  auto parser = make_parser();
  const std::string usage = parser.usage();
  for (const char* flag : {"--vms", "--interarrival", "--csv", "--verbose"})
    EXPECT_NE(usage.find(flag), std::string::npos) << flag;
}

}  // namespace
}  // namespace esva
