#include "workload/diurnal.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/summary.h"

namespace esva {
namespace {

DiurnalConfig standard_config(int n = 500) {
  DiurnalConfig config;
  config.num_vms = n;
  config.base_rate = 0.5;
  config.amplitude = 0.8;
  config.period = 1440.0;
  config.phase = 360.0;
  config.mean_duration = 50.0;
  config.vm_types = all_vm_types();
  return config;
}

TEST(Diurnal, RateOscillatesAroundBase) {
  const DiurnalConfig config = standard_config();
  // Peak at t where sin = 1: t = phase + period/4.
  const double peak_t = config.phase + config.period / 4.0;
  EXPECT_NEAR(diurnal_rate(config, peak_t), 0.5 * 1.8, 1e-9);
  const double trough_t = config.phase + 3.0 * config.period / 4.0;
  EXPECT_NEAR(diurnal_rate(config, trough_t), 0.5 * 0.2, 1e-9);
  EXPECT_NEAR(diurnal_rate(config, config.phase), 0.5, 1e-9);
}

TEST(Diurnal, RateIsPeriodic) {
  const DiurnalConfig config = standard_config();
  for (double t : {10.0, 400.0, 1000.0})
    EXPECT_NEAR(diurnal_rate(config, t),
                diurnal_rate(config, t + config.period), 1e-9);
}

TEST(Diurnal, GeneratesRequestedCountWithValidSpecs) {
  Rng rng(3);
  const auto vms = generate_diurnal_workload(standard_config(300), rng);
  ASSERT_EQ(vms.size(), 300u);
  Time prev = 0;
  for (std::size_t j = 0; j < vms.size(); ++j) {
    EXPECT_EQ(vms[j].id, static_cast<VmId>(j));
    EXPECT_TRUE(vms[j].valid());
    EXPECT_GE(vms[j].start, prev);
    prev = vms[j].start;
  }
}

TEST(Diurnal, ArrivalsConcentrateInThePeakHalf) {
  // Count arrivals (mod period) in the high half-cycle vs the low one; with
  // amplitude 0.8 the high half carries ~75% of arrivals.
  Rng rng(7);
  DiurnalConfig config = standard_config(4000);
  const auto vms = generate_diurnal_workload(config, rng);
  int high = 0;
  int low = 0;
  for (const VmSpec& vm : vms) {
    const double cycle_pos = std::fmod(
        static_cast<double>(vm.start) - config.phase + 10 * config.period,
        config.period);
    (cycle_pos < config.period / 2.0 ? high : low)++;
  }
  EXPECT_GT(high, low * 2);
}

TEST(Diurnal, ZeroAmplitudeMatchesHomogeneousRate) {
  Rng rng(11);
  DiurnalConfig config = standard_config(4000);
  config.amplitude = 0.0;
  const auto vms = generate_diurnal_workload(config, rng);
  // Effective mean inter-arrival should be 1/base_rate = 2 time units.
  const double span =
      static_cast<double>(vms.back().start - vms.front().start);
  EXPECT_NEAR(span / static_cast<double>(vms.size()), 2.0, 0.2);
}

TEST(Diurnal, SeedDeterminism) {
  Rng a(42);
  Rng b(42);
  const auto va = generate_diurnal_workload(standard_config(100), a);
  const auto vb = generate_diurnal_workload(standard_config(100), b);
  for (std::size_t j = 0; j < va.size(); ++j) {
    EXPECT_EQ(va[j].start, vb[j].start);
    EXPECT_EQ(va[j].end, vb[j].end);
    EXPECT_EQ(va[j].type_name, vb[j].type_name);
  }
}

TEST(Diurnal, DurationsFollowConfiguredMean) {
  Rng rng(13);
  DiurnalConfig config = standard_config(8000);
  config.mean_duration = 30.0;
  Accumulator acc;
  for (const VmSpec& vm : generate_diurnal_workload(config, rng))
    acc.add(static_cast<double>(vm.duration()));
  EXPECT_NEAR(acc.mean(), 30.0, 1.2);
}

}  // namespace
}  // namespace esva
