// The log-bucket latency histogram (obs/histogram.h): bucket-edge geometry,
// the edge cases the ISSUE calls out (empty, single sample, underflow,
// overflow, merge), the one-bucket-width agreement between histogram
// quantiles and the exact sort-based stats::quantile, concurrent recording
// (this binary runs under TSan in CI), and the Timer/registry integration.

#include "obs/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "stats/summary.h"
#include "util/rng.h"

namespace esva {
namespace {

TEST(HistogramBuckets, EdgesAreMonotoneAndIndexRoundTrips) {
  double prev_upper = 0.0;
  for (int b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
    const double lower = LatencyHistogram::bucket_lower(b);
    const double upper = LatencyHistogram::bucket_upper(b);
    ASSERT_LT(lower, upper) << "bucket " << b;
    if (b > 0) ASSERT_DOUBLE_EQ(lower, prev_upper) << "bucket " << b;
    prev_upper = upper;
    // A point safely inside the bucket maps back to it.
    const double inside = std::isfinite(upper)
                              ? lower + (upper - lower) / 2
                              : lower * 2;
    ASSERT_EQ(LatencyHistogram::bucket_index(inside), b) << "bucket " << b;
  }
  EXPECT_FALSE(
      std::isfinite(LatencyHistogram::bucket_upper(
          LatencyHistogram::kNumBuckets - 1)));
}

TEST(HistogramBuckets, RelativeWidthIsBoundedBySubBucketCount) {
  // Buckets above the underflow bin are at most lower/kSubBuckets wide — the
  // guarantee behind "quantiles within one bucket width ≈ 6%".
  for (int b = 1; b < LatencyHistogram::kNumBuckets - 1; ++b) {
    const double lower = LatencyHistogram::bucket_lower(b);
    const double width = LatencyHistogram::bucket_upper(b) - lower;
    EXPECT_LE(width, lower / LatencyHistogram::kSubBuckets * (1 + 1e-12))
        << "bucket " << b;
  }
}

TEST(Histogram, EmptySnapshotIsAllZero) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.total(), 0u);
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_TRUE(snap.empty());
  EXPECT_EQ(snap.total, 0u);
  EXPECT_EQ(snap.min_ms, 0.0);
  EXPECT_EQ(snap.max_ms, 0.0);
  EXPECT_EQ(snap.quantile(0.5), 0.0);
  EXPECT_EQ(snap.p99(), 0.0);
}

TEST(Histogram, SingleSampleReportsItselfAtEveryQuantile) {
  LatencyHistogram hist;
  hist.record(3.7);
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.total, 1u);
  EXPECT_EQ(snap.min_ms, 3.7);
  EXPECT_EQ(snap.max_ms, 3.7);
  // The [min, max] clamp makes the lone sample exact, not bucket-rounded.
  EXPECT_EQ(snap.quantile(0.0), 3.7);
  EXPECT_EQ(snap.p50(), 3.7);
  EXPECT_EQ(snap.p99(), 3.7);
  EXPECT_EQ(snap.quantile(1.0), 3.7);
}

TEST(Histogram, UnderflowNegativeAndNanLandInBucketZero) {
  EXPECT_EQ(LatencyHistogram::bucket_index(0.0), 0);
  EXPECT_EQ(LatencyHistogram::bucket_index(-1.0), 0);
  EXPECT_EQ(LatencyHistogram::bucket_index(LatencyHistogram::kMinMs / 2), 0);
  EXPECT_EQ(LatencyHistogram::bucket_index(std::nan("")), 0);
  EXPECT_EQ(LatencyHistogram::bucket_index(LatencyHistogram::kMinMs), 1);

  LatencyHistogram hist;
  hist.record(0.0);
  hist.record(5e-4);
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.min_ms, 0.0);
  EXPECT_EQ(snap.max_ms, 5e-4);
  EXPECT_LE(snap.p50(), LatencyHistogram::kMinMs);
}

TEST(Histogram, OverflowBucketClampsToObservedMax) {
  LatencyHistogram hist;
  const double huge = 1e9;  // far beyond kMinMs·2^kOctaves ≈ 67 s
  EXPECT_EQ(LatencyHistogram::bucket_index(huge),
            LatencyHistogram::kNumBuckets - 1);
  hist.record(1.0);
  hist.record(huge);
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.counts[static_cast<std::size_t>(
                LatencyHistogram::kNumBuckets - 1)],
            1u);
  EXPECT_EQ(snap.max_ms, huge);
  // The overflow bin has no finite upper edge; the exact max bounds it.
  EXPECT_EQ(snap.quantile(1.0), huge);
  EXPECT_LE(snap.p99(), huge);
}

TEST(Histogram, MergeAddsCountsAndExtremes) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.record(0.5);
  a.record(2.0);
  b.record(8.0);
  b.record(0.125);
  b.record(2.0);
  a.merge(b);
  const HistogramSnapshot snap = a.snapshot();
  EXPECT_EQ(snap.total, 5u);
  EXPECT_EQ(snap.min_ms, 0.125);
  EXPECT_EQ(snap.max_ms, 8.0);
  EXPECT_EQ(snap.counts[static_cast<std::size_t>(
                LatencyHistogram::bucket_index(2.0))],
            2u);
  // Merging an empty histogram changes nothing.
  LatencyHistogram empty;
  a.merge(empty);
  EXPECT_EQ(a.snapshot().total, 5u);
  EXPECT_EQ(a.snapshot().min_ms, 0.125);
}

TEST(Histogram, QuantilesAgreeWithExactSortWithinOneBucketWidth) {
  // Log-uniform latencies over ~7 decades, deterministic seed. The histogram
  // quantile must land within the bucket span covered by the two order
  // statistics the exact computation interpolates between.
  Rng rng(2024);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) {
    const double u = rng.next_double();
    samples.push_back(std::exp(std::log(1e-3) +
                               u * (std::log(3e4) - std::log(1e-3))));
  }
  LatencyHistogram hist;
  for (double ms : samples) hist.record(ms);
  const HistogramSnapshot snap = hist.snapshot();

  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  for (const double p : {0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const double exact = quantile(samples, p);
    const double approx = snap.quantile(p);
    const double h = p * static_cast<double>(sorted.size() - 1);
    const auto lo_rank = static_cast<std::size_t>(std::floor(h));
    const auto hi_rank = static_cast<std::size_t>(std::ceil(h));
    // Both values lie within [lower(bucket of lo), upper(bucket of hi)].
    const double tol =
        LatencyHistogram::bucket_upper(
            LatencyHistogram::bucket_index(sorted[hi_rank])) -
        LatencyHistogram::bucket_lower(
            LatencyHistogram::bucket_index(sorted[lo_rank]));
    EXPECT_NEAR(approx, exact, tol + 1e-12) << "p=" << p;
  }
}

TEST(Histogram, ConcurrentRecordingIsLossless) {
  // 8 writers × 10k samples; run under TSan in CI (thread-sanitizer job).
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  LatencyHistogram hist;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.record(0.001 * static_cast<double>(t + 1) +
                    0.01 * static_cast<double>(i % 100));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.total, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(hist.total(), snap.total);
  EXPECT_EQ(snap.min_ms, 0.001);
  EXPECT_EQ(snap.max_ms, 0.001 * kThreads + 0.01 * 99);
}

TEST(TimerHistogram, BackingIsOptInAndFeedsPercentiles) {
  MetricsRegistry registry;
  Timer& plain = registry.timer("plain_ms");
  plain.record_ms(1.0);
  EXPECT_FALSE(plain.has_histogram());
  EXPECT_TRUE(plain.histogram_snapshot().empty());

  Timer& backed = registry.histogram_timer("backed_ms");
  EXPECT_TRUE(backed.has_histogram());
  // histogram_timer() on the same name returns the same timer, still backed.
  EXPECT_EQ(&registry.histogram_timer("backed_ms"), &backed);
  EXPECT_EQ(&registry.timer("backed_ms"), &backed);
  for (int i = 1; i <= 100; ++i) backed.record_ms(static_cast<double>(i));
  const Timer::Stats stats = backed.stats();
  const HistogramSnapshot snap = backed.histogram_snapshot();
  EXPECT_EQ(static_cast<std::uint64_t>(stats.count), snap.total);
  EXPECT_EQ(snap.min_ms, stats.min_ms);
  EXPECT_EQ(snap.max_ms, stats.max_ms);
  EXPECT_GE(snap.p50(), snap.min_ms);
  EXPECT_LE(snap.p50(), snap.p99());
  EXPECT_LE(snap.p99(), snap.max_ms);

  // The registry snapshot carries the histogram only where one is backed.
  const MetricsRegistry::Snapshot reg = registry.snapshot();
  ASSERT_EQ(reg.timers.size(), 2u);
  EXPECT_EQ(reg.timers[0].name, "backed_ms");
  EXPECT_TRUE(reg.timers[0].has_histogram);
  EXPECT_EQ(reg.timers[0].histogram.total, 100u);
  EXPECT_EQ(reg.timers[1].name, "plain_ms");
  EXPECT_FALSE(reg.timers[1].has_histogram);
}

}  // namespace
}  // namespace esva
