// Fault-tolerance layer (core/fault_plan.h + the failure paths of
// core/streaming.h): FaultPlan CSV round-trips, the differential guarantee
// that an *empty* plan with retries disabled is byte-identical to the
// fault-free engine for every streamable allocator, seeded-chaos
// reproducibility, and hand-built evacuation / drain / retry-queue /
// downtime scenarios whose every counter is checked against a traced-by-hand
// schedule.

#include "core/fault_plan.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "cluster/catalog.h"
#include "cluster/timeline.h"
#include "core/allocation.h"
#include "core/cost_model.h"
#include "core/streaming.h"
#include "ext/register.h"
#include "sim/replay.h"
#include "test_util.h"
#include "util/rng.h"
#include "workload/arrival_stream.h"
#include "workload/generator.h"

namespace esva {
namespace {

// --- FaultPlan parsing and validation --------------------------------------

TEST(FaultPlanCsv, RoundTripsAndStableSortsByTime) {
  // Deliberately unsorted; the two events at t=30 must keep input order.
  std::vector<FaultEvent> events;
  events.push_back({30, FaultKind::kRecover, 2});
  events.push_back({10, FaultKind::kFail, 2});
  events.push_back({30, FaultKind::kFail, 0});
  events.push_back({5, FaultKind::kDrain, 1});
  const FaultPlan plan(std::move(events));
  ASSERT_EQ(plan.size(), 4u);
  EXPECT_EQ(plan.events()[0].at, 5);
  EXPECT_EQ(plan.events()[1].at, 10);
  EXPECT_EQ(plan.events()[2].kind, FaultKind::kRecover);  // input order kept
  EXPECT_EQ(plan.events()[3].kind, FaultKind::kFail);

  std::stringstream csv;
  write_fault_plan(csv, plan);
  const FaultPlan reread = read_fault_plan(csv);
  ASSERT_EQ(reread.size(), plan.size());
  for (std::size_t k = 0; k < plan.size(); ++k) {
    EXPECT_EQ(reread.events()[k].at, plan.events()[k].at);
    EXPECT_EQ(reread.events()[k].kind, plan.events()[k].kind);
    EXPECT_EQ(reread.events()[k].server, plan.events()[k].server);
  }
}

TEST(FaultPlanCsv, MalformedInputsThrowWithLineNumbers) {
  const auto parse = [](const std::string& text) {
    std::stringstream in(text);
    return read_fault_plan(in);
  };
  EXPECT_THROW(parse(""), std::runtime_error);
  EXPECT_THROW(parse("time,event,server\n10,explode,0\n"), std::runtime_error);
  EXPECT_THROW(parse("time,event,server\nten,fail,0\n"), std::runtime_error);
  EXPECT_THROW(parse("time,event,server\n10,fail\n"), std::runtime_error);
  EXPECT_THROW(parse("time,event,server\n0,fail,0\n"), std::runtime_error);
  try {
    parse("time,event,server\n10,fail,0\n12,nope,1\n");
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(FaultPlanCsv, ValidateRejectsServersOutsideTheFleet) {
  std::vector<FaultEvent> events;
  events.push_back({10, FaultKind::kFail, 3});
  const FaultPlan plan(std::move(events));
  EXPECT_NO_THROW(plan.validate(4));
  EXPECT_THROW(plan.validate(3), std::invalid_argument);
}

TEST(FaultPlanCsv, RandomPlanIsDeterministicInSeed) {
  ChaosConfig config;
  config.num_servers = 8;
  config.failures = 5;
  Rng a(13), b(13), c(14);
  const FaultPlan pa = random_fault_plan(config, a);
  const FaultPlan pb = random_fault_plan(config, b);
  const FaultPlan pc = random_fault_plan(config, c);
  ASSERT_EQ(pa.size(), 10u);  // each failure paired with a recover
  ASSERT_EQ(pa.size(), pb.size());
  bool same_as_c = pa.size() == pc.size();
  for (std::size_t k = 0; k < pa.size(); ++k) {
    EXPECT_EQ(pa.events()[k].at, pb.events()[k].at);
    EXPECT_EQ(pa.events()[k].kind, pb.events()[k].kind);
    EXPECT_EQ(pa.events()[k].server, pb.events()[k].server);
    if (same_as_c && (pa.events()[k].at != pc.events()[k].at ||
                      pa.events()[k].server != pc.events()[k].server))
      same_as_c = false;
  }
  EXPECT_FALSE(same_as_c) << "different seeds produced the same plan";
  EXPECT_NO_THROW(pa.validate(config.num_servers));
}

// --- the differential guarantee: empty plan == no plan ----------------------

constexpr int kNumVms = 220;
constexpr int kNumServers = 44;

std::vector<ServerSpec> make_fleet(int num_servers) {
  std::vector<ServerSpec> servers;
  const auto& types = all_server_types();
  for (int i = 0; i < num_servers; ++i) {
    const double transition_time = 0.5 + static_cast<double>(i % 3);
    const std::size_t type_index =
        types.size() - 1 - static_cast<std::size_t>(i) % types.size();
    servers.push_back(make_server(types[type_index], i, transition_time));
  }
  return servers;
}

ProblemInstance chaos_instance(std::uint64_t seed, bool profiled) {
  WorkloadConfig config;
  config.num_vms = kNumVms;
  config.mean_interarrival = 1.5;
  config.mean_duration = 30.0;
  config.vm_types = all_vm_types();
  Rng rng(seed);
  std::vector<VmSpec> vms =
      profiled ? generate_bursty_workload(config, /*phases=*/4,
                                          /*valley_factor=*/0.45, rng)
               : generate_workload(config, rng);
  return make_problem(std::move(vms), make_fleet(kNumServers));
}

ReplayReport replay(const std::string& name, const ProblemInstance& problem,
                    const ReplayOptions& options) {
  AllocatorPtr allocator = make_allocator(name);
  std::unique_ptr<PlacementPolicy> policy = allocator->make_policy();
  EXPECT_NE(policy, nullptr) << name;
  Rng rng(7);
  VectorArrivalStream arrivals(problem.vms);
  return replay_stream(arrivals, problem.servers, *policy, rng, options);
}

TEST(FaultDifferential, EmptyPlanBitIdenticalForEveryStreamableAllocator) {
  register_extension_allocators();
  const FaultPlan empty_plan;
  for (const bool profiled : {false, true}) {
    const ProblemInstance problem = chaos_instance(11, profiled);
    for (const std::string& name : allocator_names()) {
      if (!make_allocator(name)->make_policy()) continue;
      ReplayOptions baseline;
      ReplayOptions with_plan;
      with_plan.faults = &empty_plan;  // non-null but event-free
      const ReplayReport a = replay(name, problem, baseline);
      const ReplayReport b = replay(name, problem, with_plan);
      // Byte-identical: same decisions, same rng stream, same energies.
      ASSERT_EQ(a.assignment, b.assignment)
          << name << (profiled ? " (profiled)" : " (stable)");
      EXPECT_EQ(a.total_energy, b.total_energy) << name;
      EXPECT_EQ(a.placed, b.placed) << name;
      EXPECT_EQ(a.rejected, b.rejected) << name;
      EXPECT_EQ(b.faults.fault_events, 0);
      EXPECT_EQ(b.faults.rejected_final, 0);
      EXPECT_EQ(b.faults.downtime_units, 0);
    }
  }
}

TEST(FaultDifferential, SeededChaosReplayIsReproducible) {
  register_extension_allocators();
  const ProblemInstance problem = chaos_instance(23, /*profiled=*/false);
  ChaosConfig chaos;
  chaos.num_servers = static_cast<std::size_t>(kNumServers);
  chaos.failures = 6;
  chaos.window_lo = 5;
  chaos.window_hi = 200;
  chaos.mean_repair = 40;
  Rng plan_rng(101);
  const FaultPlan plan = random_fault_plan(chaos, plan_rng);
  for (const std::string& name : {std::string("min-incremental"),
                                  std::string("random-fit")}) {
    ReplayOptions options;
    options.faults = &plan;
    options.retry.max_attempts = 3;
    const ReplayReport a = replay(name, problem, options);
    const ReplayReport b = replay(name, problem, options);
    ASSERT_EQ(a.assignment, b.assignment) << name;
    EXPECT_EQ(a.total_energy, b.total_energy) << name;
    EXPECT_EQ(a.faults.displaced, b.faults.displaced) << name;
    EXPECT_EQ(a.faults.evacuated, b.faults.evacuated) << name;
    EXPECT_EQ(a.faults.retries, b.faults.retries) << name;
    EXPECT_EQ(a.faults.retried_placed, b.faults.retried_placed) << name;
    EXPECT_EQ(a.faults.rejected_final, b.faults.rejected_final) << name;
    EXPECT_EQ(a.faults.downtime_units, b.faults.downtime_units) << name;
    EXPECT_GT(a.faults.fault_events, 0) << name;
  }
}

TEST(FaultDifferential, ThreadedScanMatchesSerialUnderFaults) {
  // The deterministic parallel candidate scan must stay deterministic when
  // evacuations and retries interleave extra place_one calls.
  const ProblemInstance problem = chaos_instance(31, /*profiled=*/false);
  ChaosConfig chaos;
  chaos.num_servers = static_cast<std::size_t>(kNumServers);
  chaos.failures = 4;
  chaos.window_lo = 5;
  chaos.window_hi = 150;
  Rng plan_rng(7);
  const FaultPlan plan = random_fault_plan(chaos, plan_rng);

  const auto run = [&](int threads) {
    AllocatorPtr allocator = make_allocator("min-incremental");
    ScanConfig scan;
    scan.threads = threads;
    allocator->set_scan_config(scan);
    std::unique_ptr<PlacementPolicy> policy = allocator->make_policy();
    EXPECT_NE(policy, nullptr);
    Rng rng(7);
    VectorArrivalStream arrivals(problem.vms);
    ReplayOptions options;
    options.faults = &plan;
    options.retry.max_attempts = 2;
    return replay_stream(arrivals, problem.servers, *policy, rng, options);
  };
  const ReplayReport serial = run(1);
  const ReplayReport threaded = run(4);
  ASSERT_EQ(serial.assignment, threaded.assignment);
  EXPECT_EQ(serial.total_energy, threaded.total_energy);
  EXPECT_EQ(serial.faults.evacuated, threaded.faults.evacuated);
  EXPECT_EQ(serial.faults.rejected_final, threaded.faults.rejected_final);
}

// --- hand-built engine scenarios -------------------------------------------

std::unique_ptr<PlacementPolicy> min_incremental_policy() {
  return make_allocator("min-incremental")->make_policy();
}

FaultPlan single_event_plan(Time at, FaultKind kind, ServerId server) {
  std::vector<FaultEvent> events;
  events.push_back({at, kind, server});
  return FaultPlan(std::move(events));
}

TEST(FaultEngine, FailureEvacuatesActiveVmToSurvivor) {
  const std::vector<ServerSpec> servers = {testing::basic_server(0),
                                           testing::basic_server(1)};
  const FaultPlan plan = single_event_plan(10, FaultKind::kFail, 0);
  std::unique_ptr<PlacementPolicy> policy = min_incremental_policy();
  Rng rng(7);
  EngineOptions options;
  options.auto_advance = true;
  options.account_energy = true;
  options.faults = &plan;
  PlacementEngine engine(servers, *policy, rng, options);

  const VmSpec vm0 = testing::vm(0, 1, 40);
  ASSERT_EQ(engine.submit(vm0).server, 0);  // tie breaks to the lowest id
  engine.advance_to(20);

  EXPECT_EQ(engine.cluster().health(0), ServerHealth::kFailed);
  EXPECT_EQ(engine.fault_stats().fault_events, 1);
  EXPECT_EQ(engine.fault_stats().displaced, 1);
  EXPECT_EQ(engine.fault_stats().evacuated, 1);
  EXPECT_EQ(engine.fault_stats().downtime_units, 0);  // re-placed instantly
  ASSERT_EQ(engine.resolutions().size(), 1u);
  EXPECT_EQ(engine.resolutions()[0].vm, 0);
  EXPECT_EQ(engine.resolutions()[0].server, 1);
  // The evacuated remainder is active on the survivor.
  EXPECT_EQ(engine.cluster().active_vms(), 1u);

  // Energy: the original placement, plus the clipped remainder's incremental
  // on the (empty) survivor, plus the first-order migration term.
  const VmSpec remainder = clip_to(vm0, 10);
  EXPECT_EQ(remainder.start, 10);
  EXPECT_EQ(remainder.end, 40);
  ServerTimeline s0(servers[0], /*horizon=*/64);
  const Energy base = incremental_cost(s0, vm0, options.cost);
  ServerTimeline s1(servers[1], /*horizon=*/64);
  const Energy evac = incremental_cost(s1, remainder, options.cost);
  const Energy migration =
      migration_energy(remainder, options.migration_cost_per_gib);
  EXPECT_DOUBLE_EQ(engine.total_energy(), base + evac + migration);
}

TEST(FaultEngine, UnEvacuableVmBecomesDowntimeNotACrash) {
  const std::vector<ServerSpec> servers = {testing::basic_server(0)};
  const FaultPlan plan = single_event_plan(5, FaultKind::kFail, 0);
  std::unique_ptr<PlacementPolicy> policy = min_incremental_policy();
  Rng rng(7);
  EngineOptions options;
  options.auto_advance = true;
  options.faults = &plan;
  PlacementEngine engine(servers, *policy, rng, options);

  ASSERT_EQ(engine.submit(testing::vm(0, 1, 20)).server, 0);
  EXPECT_NO_THROW(engine.advance_to(30));  // the failure must not crash
  EXPECT_EQ(engine.fault_stats().displaced, 1);
  EXPECT_EQ(engine.fault_stats().evacuated, 0);
  EXPECT_EQ(engine.fault_stats().rejected_final, 1);
  // Displaced at t=5, never re-placed: unserved for [5, 20] = 16 units.
  EXPECT_EQ(engine.fault_stats().downtime_units, 16);
  ASSERT_EQ(engine.resolutions().size(), 1u);
  EXPECT_EQ(engine.resolutions()[0].server, kNoServer);
  EXPECT_EQ(engine.cluster().active_vms(), 0u);
}

TEST(FaultEngine, DrainKeepsVmsRunningButRefusesNewPlacements) {
  const std::vector<ServerSpec> servers = {testing::basic_server(0)};
  const FaultPlan plan = single_event_plan(5, FaultKind::kDrain, 0);
  std::unique_ptr<PlacementPolicy> policy = min_incremental_policy();
  Rng rng(7);
  EngineOptions options;
  options.auto_advance = true;
  options.faults = &plan;
  PlacementEngine engine(servers, *policy, rng, options);

  ASSERT_EQ(engine.submit(testing::vm(0, 1, 20)).server, 0);
  engine.advance_to(6);
  EXPECT_EQ(engine.cluster().health(0), ServerHealth::kDrained);
  // The hosted VM keeps running (no displacement, no downtime) ...
  EXPECT_EQ(engine.cluster().active_vms(), 1u);
  EXPECT_EQ(engine.fault_stats().displaced, 0);
  // ... but the drained server takes nothing new.
  const PlacementDecision refused = engine.submit(testing::vm(1, 8, 12));
  EXPECT_EQ(refused.server, kNoServer);
  EXPECT_EQ(refused.reject, PlacementReject::kNoCapacity);
  // The resident VM retires through the normal sweep.
  engine.advance_to(25);
  EXPECT_EQ(engine.cluster().active_vms(), 0u);
}

TEST(FaultEngine, RecoverRestoresThePlacementSurface) {
  const std::vector<ServerSpec> servers = {testing::basic_server(0)};
  std::vector<FaultEvent> events;
  events.push_back({5, FaultKind::kFail, 0});
  events.push_back({15, FaultKind::kRecover, 0});
  const FaultPlan plan{std::move(events)};
  std::unique_ptr<PlacementPolicy> policy = min_incremental_policy();
  Rng rng(7);
  EngineOptions options;
  options.auto_advance = true;
  options.faults = &plan;
  PlacementEngine engine(servers, *policy, rng, options);

  engine.advance_to(10);
  EXPECT_EQ(engine.cluster().health(0), ServerHealth::kFailed);
  EXPECT_EQ(engine.submit(testing::vm(0, 10, 12)).server, kNoServer);
  engine.advance_to(16);
  EXPECT_EQ(engine.cluster().health(0), ServerHealth::kUp);
  EXPECT_EQ(engine.submit(testing::vm(1, 16, 30)).server, 0);
}

TEST(FaultEngine, EventsFarPastTheLastArrivalRebuildEmptyWindows) {
  // Regression: the planning horizon extends lazily with submitted VM ends,
  // so a recover (or any frontier jump) far past the last arrival used to
  // rebuild a timeline whose window length went negative and wrapped into a
  // std::length_error. The rebuild must clamp to an empty window instead,
  // and the next ensure_horizon must restore a usable placement surface.
  const std::vector<ServerSpec> servers = {testing::basic_server(0),
                                           testing::basic_server(1)};
  std::vector<FaultEvent> events;
  events.push_back({5, FaultKind::kFail, 0});
  events.push_back({100000, FaultKind::kRecover, 0});
  const FaultPlan plan{std::move(events)};
  std::unique_ptr<PlacementPolicy> policy = min_incremental_policy();
  Rng rng(7);
  EngineOptions options;
  options.auto_advance = true;
  options.faults = &plan;
  PlacementEngine engine(servers, *policy, rng, options);

  ASSERT_EQ(engine.submit(testing::vm(0, 1, 20)).server, 0);
  EXPECT_NO_THROW(engine.finish_stream());  // fires the far-future recover
  EXPECT_EQ(engine.fault_stats().fault_events, 2);
  EXPECT_EQ(engine.cluster().health(0), ServerHealth::kUp);
}

TEST(FaultEngine, ArrivalFarPastTheHorizonRebuildsEmptyWindows) {
  // Fault-free flavour of the same regression: a gap in arrivals wide
  // enough that the frontier overtakes the lazily-extended horizon makes
  // the retire sweep rebuild through the same negative-window path.
  const std::vector<ServerSpec> servers = {testing::basic_server(0)};
  std::unique_ptr<PlacementPolicy> policy = min_incremental_policy();
  Rng rng(7);
  EngineOptions options;
  options.auto_advance = true;
  PlacementEngine engine(servers, *policy, rng, options);

  ASSERT_EQ(engine.submit(testing::vm(0, 1, 4)).server, 0);
  VmSpec late = testing::vm(1, 100000, 100010);
  PlacementDecision decision;
  ASSERT_NO_THROW(decision = engine.submit(late));
  EXPECT_EQ(decision.server, 0);
}

TEST(RetryQueue, DeferredRequestPlacesOnceCapacityFrees) {
  // One server, fully occupied until t=10; the second request must wait in
  // the queue and land via a retry after the first retires.
  const std::vector<ServerSpec> servers = {testing::basic_server(0)};
  std::unique_ptr<PlacementPolicy> policy = min_incremental_policy();
  Rng rng(7);
  EngineOptions options;
  options.auto_advance = true;
  options.retry.max_attempts = 3;
  options.retry.base_delay = 8;
  PlacementEngine engine(servers, *policy, rng, options);

  ASSERT_EQ(engine.submit(testing::vm(0, 1, 10, /*cpu=*/10.0)).server, 0);
  const PlacementDecision deferred =
      engine.submit(testing::vm(1, 2, 30, /*cpu=*/10.0));
  EXPECT_EQ(deferred.server, kNoServer);
  EXPECT_EQ(deferred.reject, PlacementReject::kDeferred);
  EXPECT_EQ(engine.fault_stats().deferred, 1);

  // not_before = 2 + 8 = 10; at frontier 11 the first VM has retired.
  engine.advance_to(11);
  EXPECT_EQ(engine.fault_stats().retries, 1);
  EXPECT_EQ(engine.fault_stats().retried_placed, 1);
  EXPECT_EQ(engine.placed(), 2);
  ASSERT_EQ(engine.resolutions().size(), 1u);
  EXPECT_EQ(engine.resolutions()[0].vm, 1);
  EXPECT_EQ(engine.resolutions()[0].server, 0);
  EXPECT_EQ(engine.cluster().active_vms(), 1u);
}

TEST(RetryQueue, BoundedAttemptsExhaustIntoFinalRejection) {
  const std::vector<ServerSpec> servers = {testing::basic_server(0)};
  std::unique_ptr<PlacementPolicy> policy = min_incremental_policy();
  Rng rng(7);
  EngineOptions options;
  options.auto_advance = true;
  options.retry.max_attempts = 3;  // initial + 2 retries
  options.retry.base_delay = 8;
  options.retry.backoff = 2.0;
  PlacementEngine engine(servers, *policy, rng, options);

  // Occupies the whole server past every retry.
  ASSERT_EQ(engine.submit(testing::vm(0, 1, 100, /*cpu=*/10.0)).server, 0);
  EXPECT_EQ(engine.submit(testing::vm(1, 2, 50, /*cpu=*/10.0)).reject,
            PlacementReject::kDeferred);
  engine.finish_stream();
  EXPECT_EQ(engine.fault_stats().retries, 2);  // attempts 2 and 3
  EXPECT_EQ(engine.fault_stats().retried_placed, 0);
  EXPECT_EQ(engine.fault_stats().rejected_final, 1);
  EXPECT_EQ(engine.placed(), 1);
  // Idempotent: a second drain must not double-count anything.
  engine.finish_stream();
  EXPECT_EQ(engine.fault_stats().retries, 2);
  EXPECT_EQ(engine.fault_stats().rejected_final, 1);
}

TEST(RetryQueue, BackoffScheduleIsDeterministic) {
  RetryPolicy retry;
  retry.base_delay = 8;
  retry.backoff = 2.0;
  EXPECT_EQ(retry.delay_for(1), 8);
  EXPECT_EQ(retry.delay_for(2), 16);
  EXPECT_EQ(retry.delay_for(3), 32);
  retry.base_delay = 1;
  retry.backoff = 0.1;  // shrinking schedules still wait at least one unit
  EXPECT_EQ(retry.delay_for(2), 1);
  EXPECT_FALSE(RetryPolicy{}.enabled());
  retry.max_attempts = 4;
  EXPECT_TRUE(retry.enabled());
}

TEST(RetryQueue, CapacityBoundBouncesAdmissions) {
  const std::vector<ServerSpec> servers = {testing::basic_server(0)};
  std::unique_ptr<PlacementPolicy> policy = min_incremental_policy();
  Rng rng(7);
  EngineOptions options;
  options.auto_advance = true;
  options.retry.max_attempts = 2;
  options.retry.queue_capacity = 1;
  PlacementEngine engine(servers, *policy, rng, options);

  ASSERT_EQ(engine.submit(testing::vm(0, 1, 50, /*cpu=*/10.0)).server, 0);
  EXPECT_EQ(engine.submit(testing::vm(1, 2, 40, /*cpu=*/10.0)).reject,
            PlacementReject::kDeferred);
  const PlacementDecision bounced =
      engine.submit(testing::vm(2, 3, 40, /*cpu=*/10.0));
  EXPECT_EQ(bounced.reject, PlacementReject::kQueueFull);
  EXPECT_EQ(engine.fault_stats().queue_full, 1);
  EXPECT_EQ(engine.fault_stats().rejected_final, 1);
  EXPECT_EQ(engine.fault_stats().deferred, 1);
}

TEST(RetryQueue, DisplacedVmRetriedLaterAccruesDowntime) {
  // Two servers; both full when server 0 fails, so the displaced VM waits in
  // the queue and lands only after capacity frees — the wait is downtime.
  const std::vector<ServerSpec> servers = {testing::basic_server(0),
                                           testing::basic_server(1)};
  const FaultPlan plan = single_event_plan(5, FaultKind::kFail, 0);
  std::unique_ptr<PlacementPolicy> policy = min_incremental_policy();
  Rng rng(7);
  EngineOptions options;
  options.auto_advance = true;
  options.faults = &plan;
  options.retry.max_attempts = 4;
  options.retry.base_delay = 8;
  PlacementEngine engine(servers, *policy, rng, options);

  // vm0 on server 0; vm1 fills server 1 until t=12.
  ASSERT_EQ(engine.submit(testing::vm(0, 1, 30, /*cpu=*/10.0)).server, 0);
  ASSERT_EQ(engine.submit(testing::vm(1, 2, 12, /*cpu=*/10.0)).server, 1);
  engine.advance_to(6);  // the failure displaces vm0; server 1 is still full
  EXPECT_EQ(engine.fault_stats().displaced, 1);
  EXPECT_EQ(engine.fault_stats().evacuated, 0);
  EXPECT_EQ(engine.fault_stats().deferred, 1);
  // not_before = 5 + 8 = 13; by then vm1 (end 12) has retired.
  engine.advance_to(13);
  EXPECT_EQ(engine.fault_stats().retried_placed, 1);
  EXPECT_EQ(engine.fault_stats().evacuated, 1);
  // Down from the displacement at t=5 until the retry landed at t=13.
  EXPECT_EQ(engine.fault_stats().downtime_units, 8);
  ASSERT_EQ(engine.resolutions().size(), 2u);
  EXPECT_EQ(engine.resolutions()[0].server, kNoServer);  // evacuation failed
  EXPECT_EQ(engine.resolutions()[1].server, 1);          // retry landed
}

TEST(RetryQueue, FifoOrderBreaksTiesDeterministically) {
  // Three identical infeasible requests deferred at the same instant: their
  // retries fire in admission order (seq tiebreak), so with exactly one free
  // slot the *first* admitted wins — run twice to pin determinism.
  const auto run = [] {
    const std::vector<ServerSpec> servers = {testing::basic_server(0)};
    std::unique_ptr<PlacementPolicy> policy = min_incremental_policy();
    Rng rng(7);
    EngineOptions options;
    options.auto_advance = true;
    options.retry.max_attempts = 2;
    // not_before = 2 + 6 = 8, one tick past the blocker's retirement at 7.
    options.retry.base_delay = 6;
    PlacementEngine engine(servers, *policy, rng, options);
    EXPECT_EQ(engine.submit(testing::vm(0, 1, 6, /*cpu=*/10.0)).server, 0);
    for (VmId id : {1, 2, 3})
      EXPECT_EQ(engine
                    .submit(testing::vm(id, 2, 30, /*cpu=*/10.0))
                    .reject,
                PlacementReject::kDeferred);
    engine.finish_stream();
    // Hosting changes only: the two losers stay kNoServer from submit time,
    // so exactly one resolution — the winner's retry placement.
    EXPECT_EQ(engine.fault_stats().retried_placed, 1);
    EXPECT_EQ(engine.fault_stats().rejected_final, 2);
    return std::vector<Resolution>(engine.resolutions());
  };
  const std::vector<Resolution> a = run();
  const std::vector<Resolution> b = run();
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0].vm, 1);  // first admitted retries first and wins the slot
  EXPECT_EQ(a[0].server, 0);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].vm, b[0].vm);
  EXPECT_EQ(a[0].server, b[0].server);
}

TEST(LateArrival, ToleratedPathRejectsStructurallyInsteadOfThrowing) {
  const std::vector<ServerSpec> servers = {testing::basic_server(0)};
  std::unique_ptr<PlacementPolicy> policy = min_incremental_policy();
  Rng rng(7);
  EngineOptions options;
  options.tolerate_late_arrivals = true;
  PlacementEngine engine(servers, *policy, rng, options);
  EXPECT_NE(engine.submit(testing::vm(0, 10, 20)).server, kNoServer);
  engine.advance_to(30);
  const PlacementDecision late = engine.submit(testing::vm(1, 25, 40));
  EXPECT_EQ(late.server, kNoServer);
  EXPECT_EQ(late.reject, PlacementReject::kLateArrival);
  EXPECT_EQ(engine.fault_stats().late_arrivals, 1);
  EXPECT_EQ(engine.requests(), 2);
}

// --- O(1) active-VM counter -------------------------------------------------

TEST(ClusterStateCounter, ActiveCountMatchesScanThroughFaultsAndRetirement) {
  ClusterState cluster({testing::basic_server(0), testing::basic_server(1)},
                       /*initial_horizon=*/64);
  EXPECT_EQ(cluster.active_vms(), 0u);
  cluster.place(0, testing::vm(0, 1, 10));
  cluster.place(0, testing::vm(1, 5, 20));
  cluster.place(1, testing::vm(2, 1, 30));
  EXPECT_EQ(cluster.active_vms(), 3u);
  EXPECT_EQ(cluster.active_vms(), cluster.active_vms_scan());
  cluster.advance_to(15);  // retires vm0
  EXPECT_EQ(cluster.active_vms(), 2u);
  EXPECT_EQ(cluster.active_vms(), cluster.active_vms_scan());
  const std::vector<VmSpec> displaced = cluster.fail_server(0);
  EXPECT_EQ(displaced.size(), 1u);  // vm1
  EXPECT_EQ(cluster.active_vms(), 1u);
  EXPECT_EQ(cluster.active_vms(), cluster.active_vms_scan());
  cluster.advance_to(40);
  EXPECT_EQ(cluster.active_vms(), 0u);
  EXPECT_EQ(cluster.active_vms(), cluster.active_vms_scan());
}

}  // namespace
}  // namespace esva
