#include "stats/summary.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace esva {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.stderr_mean(), 0.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator acc;
  acc.add(5.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_EQ(acc.mean(), 5.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.min(), 5.0);
  EXPECT_EQ(acc.max(), 5.0);
}

TEST(Accumulator, KnownSample) {
  // {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, population var 4, sample var 32/7.
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(acc.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(acc.min(), 2.0);
  EXPECT_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, StderrShrinksWithSqrtN) {
  Accumulator small;
  Accumulator large;
  Rng rng(5);
  for (int i = 0; i < 100; ++i) small.add(rng.next_double());
  for (int i = 0; i < 10000; ++i) large.add(rng.next_double());
  EXPECT_GT(small.stderr_mean(), large.stderr_mean() * 5);
}

TEST(Accumulator, NumericallyStableOnLargeOffsets) {
  Accumulator acc;
  const double offset = 1e9;
  for (double x : {offset + 1, offset + 2, offset + 3}) acc.add(x);
  EXPECT_NEAR(acc.mean(), offset + 2, 1e-3);
  EXPECT_NEAR(acc.variance(), 1.0, 1e-6);
}

TEST(Accumulator, MergeMatchesSequential) {
  Rng rng(9);
  Accumulator whole;
  Accumulator part1;
  Accumulator part2;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform_double(-10, 10);
    whole.add(x);
    (i < 200 ? part1 : part2).add(x);
  }
  part1.merge(part2);
  EXPECT_EQ(part1.count(), whole.count());
  EXPECT_NEAR(part1.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(part1.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(part1.min(), whole.min());
  EXPECT_EQ(part1.max(), whole.max());
}

TEST(Accumulator, MergeWithEmptySides) {
  Accumulator a;
  Accumulator b;
  b.add(3.0);
  b.add(5.0);
  a.merge(b);  // empty.merge(nonempty)
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  Accumulator c;
  a.merge(c);  // nonempty.merge(empty)
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
}

TEST(Summarize, EmptySpan) {
  const Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, FullStatistics) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_NEAR(s.ci95_halfwidth, 1.96 * s.stderr_mean, 1e-12);
}

TEST(Quantile, InterpolatesBetweenOrderStatistics) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};  // unsorted on purpose
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0 / 3.0), 2.0);
  EXPECT_EQ(quantile({}, 0.5), 0.0);
}

TEST(Quantiles, AgreesExactlyWithPerQuantileCalls) {
  Rng rng(99);
  std::vector<double> xs;
  for (int i = 0; i < 257; ++i) xs.push_back(rng.exponential(3.0));
  const std::vector<double> ps{0.0, 0.25, 0.5, 0.9, 0.99, 1.0};
  const std::vector<double> qs = quantiles(xs, ps);
  ASSERT_EQ(qs.size(), ps.size());
  // One shared sort must not change any value vs. the sort-per-call path.
  for (std::size_t i = 0; i < ps.size(); ++i)
    EXPECT_EQ(qs[i], quantile(xs, ps[i])) << "p=" << ps[i];
}

TEST(Quantiles, EmptyInputsYieldZeros) {
  const std::vector<double> ps{0.5, 0.99};
  const std::vector<double> qs = quantiles({}, ps);
  ASSERT_EQ(qs.size(), 2u);
  EXPECT_EQ(qs[0], 0.0);
  EXPECT_EQ(qs[1], 0.0);
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_TRUE(quantiles(xs, {}).empty());
}

}  // namespace
}  // namespace esva
