#include "util/sparkline.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace esva {
namespace {

// Each block glyph is 3 UTF-8 bytes.
std::size_t glyph_count(const std::string& s) {
  std::size_t count = 0;
  for (char c : s)
    if ((c & 0xC0) != 0x80) ++count;  // count non-continuation bytes
  return count;
}

TEST(Sparkline, EmptyInput) { EXPECT_EQ(sparkline({}), ""); }

TEST(Sparkline, OneGlyphPerValue) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_EQ(glyph_count(sparkline(xs)), 5u);
}

TEST(Sparkline, MinGetsLowestBlockMaxGetsHighest) {
  const std::vector<double> xs{0.0, 10.0};
  const std::string s = sparkline(xs);
  EXPECT_EQ(s, "▁█");
}

TEST(Sparkline, MonotoneSeriesRendersMonotoneBlocks) {
  const std::vector<double> xs{0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(sparkline(xs), "▁▂▃▄▅▆▇█");
}

TEST(Sparkline, ConstantSeriesUsesMidHeight) {
  const std::vector<double> xs{5, 5, 5};
  EXPECT_EQ(sparkline(xs), "▄▄▄");
}

TEST(Sparkline, NonFiniteValuesRenderAsSpaces) {
  const std::vector<double> xs{1.0, NAN, 3.0};
  const std::string s = sparkline(xs);
  EXPECT_NE(s.find(' '), std::string::npos);
  EXPECT_EQ(glyph_count(s), 3u);
}

TEST(Sparkline, DownsamplingCapsWidth) {
  std::vector<double> xs(1000);
  for (std::size_t i = 0; i < xs.size(); ++i)
    xs[i] = static_cast<double>(i);
  const std::string s = sparkline(xs, 40);
  EXPECT_EQ(glyph_count(s), 40u);
  // Monotone input stays monotone after bucket-mean downsampling.
  EXPECT_EQ(s.substr(0, 3), "▁");
  EXPECT_EQ(s.substr(s.size() - 3), "█");
}

TEST(Sparkline, NoDownsamplingWhenAlreadyNarrow) {
  const std::vector<double> xs{1, 2, 3};
  EXPECT_EQ(sparkline(xs, 40), sparkline(xs));
}

}  // namespace
}  // namespace esva
