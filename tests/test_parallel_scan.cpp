// Differential harness for the candidate-scan engine (core/candidate_scan.h):
// whatever ScanConfig says — serial or parallel, cached or uncached — every
// scan-based allocator must produce an assignment *byte-identical* to the
// historical serial uncached loop. Randomized over generator-seeded
// instances, stable and per-time-unit (profiled) workloads.

#include "core/candidate_scan.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "baselines/registry.h"
#include "cluster/catalog.h"
#include "core/allocation.h"
#include "obs/metrics.h"
#include "test_util.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace esva {
namespace {

constexpr int kNumVms = 220;
constexpr int kNumServers = 44;

const std::vector<std::string>& scan_allocators() {
  static const std::vector<std::string> kNames = {
      "min-incremental", "best-fit-cpu", "lowest-idle-power",
      "dot-product-fit"};
  return kNames;
}

std::vector<ServerSpec> make_fleet(int num_servers) {
  std::vector<ServerSpec> servers;
  const auto& types = all_server_types();
  for (int i = 0; i < num_servers; ++i) {
    const double transition_time = 0.5 + static_cast<double>(i % 3);
    const std::size_t type_index =
        types.size() - 1 - static_cast<std::size_t>(i) % types.size();
    servers.push_back(make_server(types[type_index], i, transition_time));
  }
  return servers;
}

WorkloadConfig workload_config() {
  WorkloadConfig config;
  config.num_vms = kNumVms;
  config.mean_interarrival = 1.5;
  config.mean_duration = 30.0;
  config.vm_types = all_vm_types();
  return config;
}

/// Stable-demand instance (the paper's workload).
ProblemInstance stable_instance(std::uint64_t seed) {
  Rng rng(seed);
  return make_problem(generate_workload(workload_config(), rng),
                      make_fleet(kNumServers));
}

/// Per-time-unit demand profiles (the general R_jt form) — exercises the
/// cache's profiled-VM bypass and the profile branch of can_fit.
ProblemInstance profiled_instance(std::uint64_t seed) {
  Rng rng(seed);
  return make_problem(
      generate_bursty_workload(workload_config(), /*phases=*/4,
                               /*valley_factor=*/0.45, rng),
      make_fleet(kNumServers));
}

/// Stable instance with starts and durations quantized to a coarse grid so
/// (CPU, MEM, interval) shapes repeat heavily — the regime the shape cache
/// is built for.
ProblemInstance quantized_instance(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<VmSpec> vms = generate_workload(workload_config(), rng);
  for (VmSpec& vm : vms) {
    vm.start = ((vm.start - 1) / 20) * 20 + 1;
    const Time duration = std::max<Time>(20, ((vm.duration() + 19) / 20) * 20);
    vm.end = vm.start + duration - 1;
  }
  return make_problem(std::move(vms), make_fleet(kNumServers));
}

Allocation run(const std::string& name, const ProblemInstance& problem,
               const ScanConfig& scan, MetricsRegistry* metrics = nullptr) {
  AllocatorPtr allocator = make_allocator(name);
  allocator->set_scan_config(scan);
  if (metrics) {
    ObsContext obs;
    obs.metrics = metrics;
    allocator->set_observability(obs);
  }
  Rng rng(7);  // the scan-based allocators are deterministic; any seed works
  return allocator->allocate(problem, rng);
}

ScanConfig config(int threads, bool cache = false) {
  ScanConfig scan;
  scan.threads = threads;
  scan.cache = cache;
  return scan;
}

// --- serial vs parallel ----------------------------------------------------

TEST(ParallelScanDifferential, ThreadCountNeverChangesAssignments) {
  for (std::uint64_t seed : {11u, 29u}) {
    for (const bool profiled : {false, true}) {
      const ProblemInstance problem =
          profiled ? profiled_instance(seed) : stable_instance(seed);
      for (const std::string& name : scan_allocators()) {
        const Allocation serial = run(name, problem, config(1));
        for (const int threads : {2, 4, 8}) {
          const Allocation parallel = run(name, problem, config(threads));
          ASSERT_EQ(serial.assignment, parallel.assignment)
              << name << " diverged at threads=" << threads << " seed=" << seed
              << (profiled ? " (profiled)" : " (stable)");
        }
      }
    }
  }
}

TEST(ParallelScanDifferential, HardwareConcurrencyThreadsMatchSerial) {
  const ProblemInstance problem = stable_instance(3);
  for (const std::string& name : scan_allocators()) {
    const Allocation serial = run(name, problem, config(1));
    const Allocation parallel = run(name, problem, config(/*threads=*/0));
    EXPECT_EQ(serial.assignment, parallel.assignment) << name;
  }
}

// --- cache on vs cache off -------------------------------------------------

TEST(ParallelScanDifferential, CacheNeverChangesAssignmentsOrEnergy) {
  for (std::uint64_t seed : {5u, 23u}) {
    for (const bool profiled : {false, true}) {
      const ProblemInstance problem =
          profiled ? profiled_instance(seed) : stable_instance(seed);
      for (const std::string& name : scan_allocators()) {
        const Allocation uncached = run(name, problem, config(1, false));
        const Allocation cached = run(name, problem, config(1, true));
        ASSERT_EQ(uncached.assignment, cached.assignment)
            << name << " seed=" << seed
            << (profiled ? " (profiled)" : " (stable)");
        // Same double bits in, same double bits out: total energy agrees
        // exactly, not approximately.
        EXPECT_EQ(evaluate_cost(problem, uncached).total(),
                  evaluate_cost(problem, cached).total())
            << name;
      }
    }
  }
}

TEST(ParallelScanDifferential, CacheAndThreadsComposed) {
  const ProblemInstance problem = quantized_instance(13);
  for (const std::string& name : scan_allocators()) {
    const Allocation reference = run(name, problem, config(1, false));
    for (const int threads : {2, 4, 8}) {
      const Allocation combined = run(name, problem, config(threads, true));
      ASSERT_EQ(reference.assignment, combined.assignment)
          << name << " threads=" << threads << " cache=on";
    }
  }
}

// --- cache behavior --------------------------------------------------------

TEST(ParallelScan, QuantizedShapesProduceCacheHits) {
  const ProblemInstance problem = quantized_instance(41);
  MetricsRegistry metrics;
  (void)run("min-incremental", problem, config(1, true), &metrics);
  const std::int64_t hits =
      metrics.counter("allocator.min-incremental.cache_hits").value();
  const std::int64_t misses =
      metrics.counter("allocator.min-incremental.cache_misses").value();
  const std::int64_t quick =
      metrics.counter("allocator.min-incremental.cache_quick_decided").value();
  EXPECT_GT(hits, 0) << "quantized workload should repeat shapes";
  EXPECT_GT(misses, 0);
  // Every probe is answered by the window-envelope triage (quick), the memo
  // (hit), or a full recompute (miss); profiled-VM bypasses don't occur here.
  const std::int64_t probes =
      metrics.counter("allocator.min-incremental.feasible_candidates")
          .value() +
      metrics.counter("allocator.min-incremental.rejections").value();
  EXPECT_EQ(hits + misses + quick, probes);
  // Quantized shapes hit well above the default 5% floor, so the warmup
  // judgment (if reached) must keep the cache on.
  EXPECT_EQ(
      metrics.counter("allocator.min-incremental.cache_auto_disabled").value(),
      0);
}

// The auto-disable policy: on a workload whose shapes essentially never
// repeat, the cache notices its own uselessness after the warmup window,
// turns itself off, and — because probe answers are always recomputed
// transparently — the final assignment is byte-identical to a cache-off run.
TEST(ParallelScan, CacheAutoDisablesWhenHitRateStarved) {
  // Few servers + many VMs: contended windows defeat the quick-accept path,
  // so probes actually reach the memo, and generator-drawn intervals make
  // shape repeats vanishingly rare — the hit-rate-starved regime.
  Rng rng(77);
  const ProblemInstance problem =
      make_problem(generate_workload(workload_config(), rng), make_fleet(8));

  ScanConfig cached = config(1, true);
  cached.cache_warmup_probes = 64;
  MetricsRegistry metrics;
  const Allocation with_cache =
      run("min-incremental", problem, cached, &metrics);
  EXPECT_EQ(
      metrics.counter("allocator.min-incremental.cache_auto_disabled").value(),
      1)
      << "hit rate should fall below cache_min_hit_rate after warmup";

  const Allocation uncached = run("min-incremental", problem, config(1, false));
  EXPECT_EQ(with_cache.assignment, uncached.assignment);
  EXPECT_EQ(evaluate_cost(problem, with_cache).total(),
            evaluate_cost(problem, uncached).total());

  // The warmup judgment happens at a serial point, so the decision — and the
  // assignment — is thread-count invariant too.
  ScanConfig threaded = cached;
  threaded.threads = 4;
  const Allocation parallel = run("min-incremental", problem, threaded);
  EXPECT_EQ(with_cache.assignment, parallel.assignment);
}

TEST(ParallelScan, ProfiledVmsBypassTheCache) {
  const ProblemInstance problem = profiled_instance(41);
  MetricsRegistry metrics;
  (void)run("min-incremental", problem, config(1, true), &metrics);
  EXPECT_EQ(metrics.counter("allocator.min-incremental.cache_hits").value(),
            0);
  EXPECT_EQ(metrics.counter("allocator.min-incremental.cache_misses").value(),
            0);
}

TEST(ParallelScan, CacheCountersAbsentWhenCacheDisabled) {
  const ProblemInstance problem = stable_instance(41);
  MetricsRegistry metrics;
  (void)run("min-incremental", problem, config(4, false), &metrics);
  bool found = false;
  for (const auto& [cname, value] : metrics.snapshot().counters)
    if (cname.find("cache") != std::string::npos) found = true;
  EXPECT_FALSE(found) << "cache-off runs must not emit cache counters";
}

// --- probe accounting is thread-count invariant ----------------------------

TEST(ParallelScan, ProbeCountersMatchAcrossThreadCounts) {
  const ProblemInstance problem = stable_instance(19);
  MetricsRegistry serial_metrics;
  (void)run("min-incremental", problem, config(1), &serial_metrics);
  MetricsRegistry parallel_metrics;
  (void)run("min-incremental", problem, config(4), &parallel_metrics);
  for (const char* counter :
       {"allocator.min-incremental.feasible_candidates",
        "allocator.min-incremental.rejections",
        "allocator.min-incremental.unallocated"}) {
    EXPECT_EQ(serial_metrics.counter(counter).value(),
              parallel_metrics.counter(counter).value())
        << counter;
  }
}

// --- the scan primitive itself ---------------------------------------------

TEST(ScanCandidates, EmptyAndTinyRangesStaySerial) {
  ThreadPool pool(3);
  const auto nothing = [](std::size_t) -> std::optional<double> {
    return std::nullopt;
  };
  ScanOutcome empty = scan_candidates(0, nothing, &pool);
  EXPECT_EQ(empty.best, kNoCandidate);
  EXPECT_EQ(empty.feasible, 0);
  EXPECT_EQ(empty.rejected, 0);

  const auto identity = [](std::size_t i) -> std::optional<double> {
    return static_cast<double>(i);
  };
  ScanOutcome tiny = scan_candidates(3, identity, &pool);
  EXPECT_EQ(tiny.best, 0u);
  EXPECT_EQ(tiny.feasible, 3);
}

TEST(ScanCandidates, TiesBreakToLowestIndexAtAnyThreadCount) {
  // Scores: all equal except a strict minimum duplicated at 18 and 90 —
  // the serial rule (strict <) keeps index 18 everywhere.
  const auto eval = [](std::size_t i) -> std::optional<double> {
    if (i % 7 == 3) return std::nullopt;  // sprinkle infeasibles
    return (i == 18 || i == 90) ? 1.0 : 2.0;
  };
  const ScanOutcome serial = scan_range(std::size_t{0}, std::size_t{100}, eval);
  EXPECT_EQ(serial.best, 18u);
  for (const std::size_t workers : {1u, 2u, 3u, 7u}) {
    ThreadPool pool(workers);
    const ScanOutcome parallel = scan_candidates(100, eval, &pool);
    EXPECT_EQ(parallel.best, serial.best) << workers;
    EXPECT_EQ(parallel.best_score, serial.best_score);
    EXPECT_EQ(parallel.feasible, serial.feasible);
    EXPECT_EQ(parallel.rejected, serial.rejected);
  }
}

TEST(ScanConfigTest, ResolvedThreadsPassesExplicitCountsThrough) {
  ScanConfig config;
  EXPECT_EQ(config.resolved_threads(), 1);  // serial default
  config.threads = 1;
  EXPECT_EQ(config.resolved_threads(), 1);
  config.threads = 7;
  EXPECT_EQ(config.resolved_threads(), 7);
}

TEST(ScanConfigTest, ResolvedThreadsZeroMeansHardwareConcurrency) {
  ScanConfig config;
  config.threads = 0;
  const int resolved = config.resolved_threads();
  // hardware_concurrency() may return 0 on exotic platforms; the contract is
  // "at least 1", and where the runtime does report a count, exactly that.
  EXPECT_GE(resolved, 1);
  const unsigned reported = std::thread::hardware_concurrency();
  if (reported > 0) {
    EXPECT_EQ(resolved, static_cast<int>(reported));
  }
}

TEST(ScanCandidates, EvalExceptionPropagatesFromWorkerChunk) {
  ThreadPool pool(3);
  const auto eval = [](std::size_t i) -> std::optional<double> {
    if (i == 97) throw std::runtime_error("probe exploded");
    return static_cast<double>(i);
  };
  EXPECT_THROW(scan_candidates(100, eval, &pool), std::runtime_error);
}

}  // namespace
}  // namespace esva
