#include "workload/scenarios.h"

#include <gtest/gtest.h>

#include <set>

namespace esva {
namespace {

TEST(Scenarios, DefaultMatchesPaperSettings) {
  const Scenario s = default_scenario(200, 4.0);
  EXPECT_EQ(s.workload.num_vms, 200);
  EXPECT_DOUBLE_EQ(s.workload.mean_interarrival, 4.0);
  EXPECT_DOUBLE_EQ(s.workload.mean_duration, 50.0);  // §IV-C default
  EXPECT_EQ(s.workload.vm_types.size(), 9u);         // all Table I types
  EXPECT_EQ(s.server_types.size(), 5u);              // all Table II types
  EXPECT_EQ(s.num_servers, 100);                     // VMs / 2
  EXPECT_DOUBLE_EQ(s.transition_time, 1.0);          // §IV-C default
}

TEST(Scenarios, Fig5VariesTransitionTime) {
  const Scenario s = fig5_scenario(4.0, 3.0);
  EXPECT_EQ(s.workload.num_vms, 100);  // §IV-D: 100 VMs on 50 servers
  EXPECT_EQ(s.num_servers, 50);
  EXPECT_DOUBLE_EQ(s.transition_time, 3.0);
}

TEST(Scenarios, Fig6VariesMeanLength) {
  const Scenario s = fig6_scenario(2.0, 20.0);
  EXPECT_EQ(s.workload.num_vms, 100);
  EXPECT_EQ(s.num_servers, 50);
  EXPECT_DOUBLE_EQ(s.workload.mean_duration, 20.0);
  EXPECT_DOUBLE_EQ(s.transition_time, 1.0);
}

TEST(Scenarios, Fig7UsesStandardVmsAndSelectedServers) {
  const Scenario types13 = fig7_scenario(300, 2.0, false);
  EXPECT_EQ(types13.workload.vm_types.size(), 4u);  // standard only
  EXPECT_EQ(types13.server_types.size(), 3u);       // types 1-3
  EXPECT_EQ(types13.server_types.back().name, "server-type-3");

  const Scenario all = fig7_scenario(300, 2.0, true);
  EXPECT_EQ(all.server_types.size(), 5u);
  EXPECT_NE(all.name, types13.name);
}

TEST(Scenarios, InstantiateProducesValidProblem) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    Rng rng(seed);
    const Scenario s = fig2_scenario(100, 2.0);
    const ProblemInstance p = s.instantiate(rng);
    EXPECT_EQ(p.num_vms(), 100u);
    EXPECT_EQ(p.num_servers(), 50u);
    EXPECT_EQ(validate_problem(p), "");
    EXPECT_GT(p.horizon, 0);
  }
}

TEST(Scenarios, InstantiateIsSeedDeterministic) {
  const Scenario s = fig2_scenario(80, 1.0);
  Rng a(9);
  Rng b(9);
  const ProblemInstance pa = s.instantiate(a);
  const ProblemInstance pb = s.instantiate(b);
  ASSERT_EQ(pa.num_vms(), pb.num_vms());
  for (std::size_t j = 0; j < pa.num_vms(); ++j) {
    EXPECT_EQ(pa.vms[j].start, pb.vms[j].start);
    EXPECT_EQ(pa.vms[j].type_name, pb.vms[j].type_name);
  }
  for (std::size_t i = 0; i < pa.num_servers(); ++i)
    EXPECT_EQ(pa.servers[i].type_name, pb.servers[i].type_name);
}

TEST(Scenarios, Fig7FleetOnlyUsesRequestedTypes) {
  Rng rng(4);
  const ProblemInstance p = fig7_scenario(100, 2.0, false).instantiate(rng);
  std::set<std::string> names;
  for (const ServerSpec& s : p.servers) names.insert(s.type_name);
  for (const std::string& name : names)
    EXPECT_TRUE(name == "server-type-1" || name == "server-type-2" ||
                name == "server-type-3")
        << name;
}

TEST(Scenarios, SweepsMatchPaperAxes) {
  EXPECT_EQ(interarrival_sweep().front(), 0.5);
  EXPECT_EQ(interarrival_sweep().back(), 10.0);
  EXPECT_EQ(vm_count_sweep(),
            (std::vector<int>{100, 200, 300, 400, 500}));
}

TEST(Scenarios, MixedTransitionsDrawPerServerTimes) {
  Rng rng(8);
  const Scenario s = mixed_transition_scenario(100, 2.0);
  const ProblemInstance p = s.instantiate(rng);
  std::set<double> distinct;
  for (const ServerSpec& server : p.servers) {
    EXPECT_GE(server.transition_time, 0.5);
    EXPECT_LE(server.transition_time, 3.0);
    distinct.insert(server.transition_time);
  }
  EXPECT_GT(distinct.size(), 10u);  // genuinely heterogeneous
}

TEST(Scenarios, TransitionTimePropagatesToEveryServer) {
  Rng rng(5);
  const ProblemInstance p = fig5_scenario(2.0, 0.5).instantiate(rng);
  for (const ServerSpec& s : p.servers) {
    EXPECT_DOUBLE_EQ(s.transition_time, 0.5);
    EXPECT_DOUBLE_EQ(s.transition_cost(), s.p_peak * 0.5);
  }
}

}  // namespace
}  // namespace esva
