// Forwarding header: the instance builders moved to
// testsupport/instance_builders.h so tests/ and bench/ share one copy.
// Existing tests keep using esva::testing unchanged.

#pragma once

#include "testsupport/instance_builders.h"

namespace esva::testing {

using esva::testsupport::basic_server;
using esva::testsupport::random_problem;
using esva::testsupport::server;
using esva::testsupport::vm;

}  // namespace esva::testing
