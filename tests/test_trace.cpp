#include "workload/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "test_util.h"
#include "workload/generator.h"

namespace esva {
namespace {

using testing::server;
using testing::vm;

TEST(VmTrace, RoundTripsThroughStreams) {
  std::vector<VmSpec> vms{vm(0, 1, 10, 2.0, 1.7), vm(1, 3, 12, 6.5, 17.1)};
  vms[0].type_name = "m1.small";
  vms[1].type_name = "m2.xlarge";

  std::stringstream buffer;
  write_vm_trace(buffer, vms);
  const auto loaded = read_vm_trace(buffer);

  ASSERT_EQ(loaded.size(), 2u);
  for (std::size_t j = 0; j < 2; ++j) {
    EXPECT_EQ(loaded[j].id, vms[j].id);
    EXPECT_EQ(loaded[j].type_name, vms[j].type_name);
    EXPECT_DOUBLE_EQ(loaded[j].demand.cpu, vms[j].demand.cpu);
    EXPECT_DOUBLE_EQ(loaded[j].demand.mem, vms[j].demand.mem);
    EXPECT_EQ(loaded[j].start, vms[j].start);
    EXPECT_EQ(loaded[j].end, vms[j].end);
  }
}

TEST(VmTrace, RoundTripsGeneratedWorkloadExactly) {
  WorkloadConfig config;
  config.num_vms = 200;
  config.mean_interarrival = 1.0;
  config.mean_duration = 30.0;
  config.vm_types = all_vm_types();
  Rng rng(5);
  const auto vms = generate_workload(config, rng);

  std::stringstream buffer;
  write_vm_trace(buffer, vms);
  const auto loaded = read_vm_trace(buffer);
  ASSERT_EQ(loaded.size(), vms.size());
  for (std::size_t j = 0; j < vms.size(); ++j) {
    ASSERT_DOUBLE_EQ(loaded[j].demand.cpu, vms[j].demand.cpu);
    ASSERT_EQ(loaded[j].start, vms[j].start);
    ASSERT_EQ(loaded[j].end, vms[j].end);
  }
}

TEST(ServerTrace, RoundTripsThroughStreams) {
  std::vector<ServerSpec> servers{
      server(0, 16, 32, 105, 210, 0.5, "server-type-1"),
      server(1, 64, 192, 210, 500, 3.0, "server-type-5")};
  std::stringstream buffer;
  write_server_trace(buffer, servers);
  const auto loaded = read_server_trace(buffer);
  ASSERT_EQ(loaded.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(loaded[i].id, servers[i].id);
    EXPECT_EQ(loaded[i].type_name, servers[i].type_name);
    EXPECT_DOUBLE_EQ(loaded[i].capacity.cpu, servers[i].capacity.cpu);
    EXPECT_DOUBLE_EQ(loaded[i].p_idle, servers[i].p_idle);
    EXPECT_DOUBLE_EQ(loaded[i].p_peak, servers[i].p_peak);
    EXPECT_DOUBLE_EQ(loaded[i].transition_time, servers[i].transition_time);
  }
}

TEST(VmTrace, RejectsWrongColumnCount) {
  std::istringstream in("id,type,cpu,mem,start,end\n0,m1.small,1,1.7,1\n");
  EXPECT_THROW(read_vm_trace(in), std::runtime_error);
}

TEST(VmTrace, RejectsNonNumericField) {
  std::istringstream in("id,type,cpu,mem,start,end\n0,m1.small,abc,1.7,1,5\n");
  EXPECT_THROW(read_vm_trace(in), std::runtime_error);
}

TEST(VmTrace, RejectsTrailingJunkInNumber) {
  std::istringstream in("id,type,cpu,mem,start,end\n0,m1.small,1x,1.7,1,5\n");
  EXPECT_THROW(read_vm_trace(in), std::runtime_error);
}

TEST(VmTrace, RejectsInvalidInterval) {
  std::istringstream in("id,type,cpu,mem,start,end\n0,m1.small,1,1.7,9,5\n");
  EXPECT_THROW(read_vm_trace(in), std::runtime_error);
}

TEST(VmTrace, RejectsNonDenseIds) {
  std::istringstream in(
      "id,type,cpu,mem,start,end\n0,a,1,1,1,5\n2,b,1,1,2,6\n");
  EXPECT_THROW(read_vm_trace(in), std::runtime_error);
}

TEST(VmTrace, RejectsEmptyFile) {
  std::istringstream in("");
  EXPECT_THROW(read_vm_trace(in), std::runtime_error);
}

TEST(ServerTrace, RejectsInvalidSpec) {
  // p_idle > p_peak.
  std::istringstream in(
      "id,type,cpu,mem,p_idle,p_peak,transition_time\n0,t,16,32,300,210,1\n");
  EXPECT_THROW(read_server_trace(in), std::runtime_error);
}

TEST(TraceFiles, SaveAndLoadRoundTrip) {
  const std::string dir = ::testing::TempDir();
  const std::string vm_path = dir + "/esva_vms.csv";
  const std::string server_path = dir + "/esva_servers.csv";

  std::vector<VmSpec> vms{vm(0, 2, 9, 4.0, 7.5)};
  vms[0].type_name = "m1.large";
  std::vector<ServerSpec> servers{server(0, 40, 96, 155, 340, 1.0)};

  save_vm_trace(vm_path, vms);
  save_server_trace(server_path, servers);
  EXPECT_EQ(load_vm_trace(vm_path).size(), 1u);
  EXPECT_EQ(load_server_trace(server_path).size(), 1u);
  EXPECT_DOUBLE_EQ(load_server_trace(server_path)[0].p_peak, 340.0);
}

TEST(AssignmentTrace, RoundTrips) {
  Allocation alloc;
  alloc.assignment = {2, kNoServer, 0, 1};
  std::stringstream buffer;
  write_assignment(buffer, alloc);
  const Allocation loaded = read_assignment(buffer, 4);
  EXPECT_EQ(loaded.assignment, alloc.assignment);
}

TEST(AssignmentTrace, RejectsMissingVm) {
  std::istringstream in("vm_id,server_id\n0,1\n");
  EXPECT_THROW(read_assignment(in, 2), std::runtime_error);
}

TEST(AssignmentTrace, RejectsDuplicateVm) {
  std::istringstream in("vm_id,server_id\n0,1\n0,2\n");
  EXPECT_THROW(read_assignment(in, 1), std::runtime_error);
}

TEST(AssignmentTrace, RejectsOutOfRangeVm) {
  std::istringstream in("vm_id,server_id\n5,1\n");
  EXPECT_THROW(read_assignment(in, 2), std::runtime_error);
}

TEST(AssignmentTrace, RejectsInvalidServerId) {
  std::istringstream in("vm_id,server_id\n0,-2\n");
  EXPECT_THROW(read_assignment(in, 1), std::runtime_error);
}

TEST(AssignmentTrace, AcceptsRowsInAnyOrder) {
  std::istringstream in("vm_id,server_id\n1,0\n0,-1\n");
  const Allocation loaded = read_assignment(in, 2);
  EXPECT_EQ(loaded.assignment, (std::vector<ServerId>{kNoServer, 0}));
}

TEST(AssignmentTrace, FileRoundTrip) {
  const std::string p = ::testing::TempDir() + "/esva_assign.csv";
  Allocation alloc;
  alloc.assignment = {1, 0};
  save_assignment(p, alloc);
  EXPECT_EQ(load_assignment(p, 2).assignment, alloc.assignment);
}

TEST(TraceFiles, MissingFileThrows) {
  EXPECT_THROW(load_vm_trace("/nonexistent/path/vms.csv"), std::runtime_error);
  EXPECT_THROW(save_vm_trace("/nonexistent/path/vms.csv", {}),
               std::runtime_error);
}

}  // namespace
}  // namespace esva
