#include <gtest/gtest.h>

#include <set>

#include "baselines/best_fit.h"
#include "baselines/ffps.h"
#include "baselines/lowest_idle_power.h"
#include "baselines/ordering.h"
#include "baselines/random_fit.h"
#include "baselines/registry.h"
#include "test_util.h"

namespace esva {
namespace {

using testing::basic_server;
using testing::random_problem;
using testing::server;
using testing::vm;

TEST(Ffps, NoShuffleIsPlainFirstFit) {
  FfpsAllocator::Options options;
  options.shuffle_servers = false;
  FfpsAllocator allocator(options);
  // Both VMs fit on server 0 -> both land there, in id order.
  const ProblemInstance p = make_problem(
      {vm(0, 1, 5, 2.0, 2.0), vm(1, 2, 6, 2.0, 2.0)},
      {basic_server(0), basic_server(1)});
  Rng rng(9);
  const Allocation alloc = allocator.allocate(p, rng);
  EXPECT_EQ(alloc.assignment, (std::vector<ServerId>{0, 0}));
}

TEST(Ffps, NoShuffleSpillsToNextServerWhenFull) {
  FfpsAllocator::Options options;
  options.shuffle_servers = false;
  FfpsAllocator allocator(options);
  const ProblemInstance p = make_problem(
      {vm(0, 1, 5, 8.0, 8.0), vm(1, 2, 6, 8.0, 8.0)},
      {basic_server(0), basic_server(1)});
  Rng rng(9);
  EXPECT_EQ(allocator.allocate(p, rng).assignment,
            (std::vector<ServerId>{0, 1}));
}

TEST(Ffps, ShuffleIsSeedDeterministic) {
  Rng gen(3);
  const ProblemInstance p = random_problem(gen, 20, 10);
  FfpsAllocator allocator;
  Rng a(42);
  Rng b(42);
  EXPECT_EQ(allocator.allocate(p, a).assignment,
            allocator.allocate(p, b).assignment);
}

TEST(Ffps, DifferentSeedsCanProduceDifferentProbes) {
  Rng gen(4);
  const ProblemInstance p = random_problem(gen, 20, 10);
  FfpsAllocator allocator;
  std::set<std::vector<ServerId>> distinct;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed);
    distinct.insert(allocator.allocate(p, rng).assignment);
  }
  EXPECT_GT(distinct.size(), 1u);
}

TEST(Ffps, AllocationsAreFeasible) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    Rng gen(seed);
    const ProblemInstance p = random_problem(gen, 25, 12);
    FfpsAllocator allocator;
    Rng rng(seed * 7 + 1);
    const Allocation alloc = allocator.allocate(p, rng);
    ASSERT_EQ(validate_allocation(p, alloc, false), "") << "seed " << seed;
  }
}

TEST(Ffps, AllocatesInStartTimeOrderNotIdOrder) {
  FfpsAllocator::Options options;
  options.shuffle_servers = false;
  FfpsAllocator allocator(options);
  // VM 1 starts earlier than VM 0; they clash, so the earlier-starting VM
  // must claim server 0 first.
  const ProblemInstance p = make_problem(
      {vm(0, 10, 20, 8.0, 8.0), vm(1, 5, 15, 8.0, 8.0)},
      {basic_server(0), basic_server(1)});
  Rng rng(1);
  const Allocation alloc = allocator.allocate(p, rng);
  EXPECT_EQ(alloc.assignment[1], 0);
  EXPECT_EQ(alloc.assignment[0], 1);
}

TEST(BestFitCpu, PicksTightestServer) {
  // VM of 6 CPU: server 1 (capacity 7) leaves headroom 1; server 0 leaves 4.
  const ProblemInstance p = make_problem(
      {vm(0, 1, 5, 6.0, 1.0)},
      {server(0, 10, 10, 100, 200), server(1, 7, 10, 100, 200)});
  BestFitCpuAllocator allocator;
  Rng rng(1);
  EXPECT_EQ(allocator.allocate(p, rng).assignment[0], 1);
}

TEST(BestFitCpu, AccountsForExistingLoad) {
  // Both servers have 10 CPU; server 0 already hosts 3 CPU overlapping, so
  // it is the tighter fit for a 5-CPU VM.
  const ProblemInstance p = make_problem(
      {vm(0, 1, 10, 3.0, 1.0), vm(1, 5, 8, 5.0, 1.0)},
      {basic_server(0), basic_server(1)});
  BestFitCpuAllocator allocator;
  Rng rng(1);
  const Allocation alloc = allocator.allocate(p, rng);
  EXPECT_EQ(alloc.assignment[0], 0);  // first VM: tie -> server 0
  EXPECT_EQ(alloc.assignment[1], 0);
}

TEST(RandomFit, ProducesFeasibleAllocations) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng gen(seed + 50);
    const ProblemInstance p = random_problem(gen, 20, 8);
    RandomFitAllocator allocator;
    Rng rng(seed);
    ASSERT_EQ(validate_allocation(p, allocator.allocate(p, rng), false), "");
  }
}

TEST(RandomFit, SpreadsAcrossServers) {
  // 30 tiny concurrent VMs on 10 big servers: random fit should not put
  // everything on one machine.
  std::vector<VmSpec> vms;
  for (int j = 0; j < 30; ++j) vms.push_back(vm(j, 1, 10, 0.1, 0.1));
  std::vector<ServerSpec> servers;
  for (int i = 0; i < 10; ++i) servers.push_back(basic_server(i));
  const ProblemInstance p = make_problem(std::move(vms), std::move(servers));
  RandomFitAllocator allocator;
  Rng rng(5);
  const Allocation alloc = allocator.allocate(p, rng);
  std::set<ServerId> used(alloc.assignment.begin(), alloc.assignment.end());
  EXPECT_GT(used.size(), 3u);
}

TEST(LowestIdlePower, PicksMostEfficientFeasibleServer) {
  const ProblemInstance p = make_problem(
      {vm(0, 1, 5, 6.0, 6.0)},
      {server(0, 10, 10, 80, 200), server(1, 10, 10, 60, 210),
       server(2, 4, 4, 40, 100)});  // server 2 is cheapest but too small
  LowestIdlePowerAllocator allocator;
  Rng rng(1);
  EXPECT_EQ(allocator.allocate(p, rng).assignment[0], 1);
}

TEST(Registry, KnowsAllNamesAndBuildsThem) {
  for (const std::string& name : allocator_names()) {
    AllocatorPtr allocator = make_allocator(name);
    ASSERT_NE(allocator, nullptr);
    EXPECT_FALSE(allocator->name().empty());
  }
  EXPECT_EQ(allocator_names().front(), "min-incremental");
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_allocator("definitely-not-an-allocator"),
               std::invalid_argument);
}

TEST(Registry, EveryAllocatorSolvesARandomInstanceFeasibly) {
  Rng gen(77);
  const ProblemInstance p = random_problem(gen, 18, 9);
  for (const std::string& name : allocator_names()) {
    AllocatorPtr allocator = make_allocator(name);
    Rng rng(11);
    const Allocation alloc = allocator->allocate(p, rng);
    ASSERT_EQ(validate_allocation(p, alloc, false), "") << name;
    EXPECT_EQ(alloc.num_unallocated(), 0u) << name;
  }
}

TEST(Ordering, WrapperAppliesRequestedOrder) {
  // With ByDurationDesc, the long VM is placed first and grabs server 0
  // under plain first-fit semantics... use min-incremental determinism
  // instead: two clashing VMs, order decides who gets consolidated where.
  AllocatorPtr by_start = make_with_order("ffps", VmOrder::ByStartTime);
  AllocatorPtr by_duration = make_with_order("ffps", VmOrder::ByDurationDesc);
  EXPECT_EQ(by_start->name(), "ffps");
  EXPECT_NE(by_start, nullptr);
  EXPECT_NE(by_duration, nullptr);

  AllocatorPtr mi = make_with_order("min-incremental", VmOrder::ByCpuDesc);
  EXPECT_EQ(mi->name(), "min-incremental");
  EXPECT_THROW(make_with_order("random-fit", VmOrder::ByStartTime),
               std::invalid_argument);
}

TEST(Ordering, AllOrdersEnumerated) {
  EXPECT_EQ(all_vm_orders().size(), 4u);
  std::set<std::string> names;
  for (VmOrder order : all_vm_orders()) names.insert(to_string(order));
  EXPECT_EQ(names.size(), 4u);
}

}  // namespace
}  // namespace esva
