#include "cluster/catalog.h"

#include <gtest/gtest.h>

#include <set>

#include "cluster/datacenter.h"
#include "util/rng.h"

namespace esva {
namespace {

TEST(VmCatalog, HasNineTypesInThreeFamilies) {
  EXPECT_EQ(all_vm_types().size(), 9u);       // Table I
  EXPECT_EQ(standard_vm_types().size(), 4u);  // m1.*
  EXPECT_EQ(memory_intensive_vm_types().size(), 3u);  // m2.*
  EXPECT_EQ(cpu_intensive_vm_types().size(), 2u);     // c1.*
}

TEST(VmCatalog, SurvivingOcrAnchorsHold) {
  // "2 7" row: c1.xlarge = 20 CU / 7 GB; "15": m1.xlarge memory.
  const auto cpu_types = cpu_intensive_vm_types();
  EXPECT_EQ(cpu_types.back().name, "c1.xlarge");
  EXPECT_DOUBLE_EQ(cpu_types.back().demand.cpu, 20.0);
  EXPECT_DOUBLE_EQ(cpu_types.back().demand.mem, 7.0);
  const auto std_types = standard_vm_types();
  EXPECT_EQ(std_types.back().name, "m1.xlarge");
  EXPECT_DOUBLE_EQ(std_types.back().demand.mem, 15.0);
}

TEST(VmCatalog, FamiliesHaveDistinctCharacter) {
  // Memory-intensive types have > 2 GiB per CU; CPU-intensive < 1.5 GiB/CU.
  for (const VmType& t : memory_intensive_vm_types())
    EXPECT_GT(t.demand.mem / t.demand.cpu, 2.0) << t.name;
  for (const VmType& t : cpu_intensive_vm_types())
    EXPECT_LT(t.demand.mem / t.demand.cpu, 1.5) << t.name;
}

TEST(VmCatalog, StandardFamilyDoubles) {
  const auto types = standard_vm_types();
  for (std::size_t k = 1; k < types.size(); ++k)
    EXPECT_DOUBLE_EQ(types[k].demand.cpu, 2.0 * types[k - 1].demand.cpu);
}

TEST(ServerCatalog, HasFiveTypesOrderedByCapacity) {
  const auto& types = all_server_types();
  ASSERT_EQ(types.size(), 5u);  // Table II
  for (std::size_t k = 1; k < types.size(); ++k) {
    EXPECT_GT(types[k].capacity.cpu, types[k - 1].capacity.cpu);
    EXPECT_GT(types[k].capacity.mem, types[k - 1].capacity.mem);
  }
}

TEST(ServerCatalog, PowerGrowsWithCapacity) {
  // Table II rule 3: "server power consumption increases as resource
  // capacity increases".
  const auto& types = all_server_types();
  for (std::size_t k = 1; k < types.size(); ++k) {
    EXPECT_GT(types[k].p_idle, types[k - 1].p_idle);
    EXPECT_GT(types[k].p_peak, types[k - 1].p_peak);
  }
}

TEST(ServerCatalog, IdlePowerIsFortyToFiftyPercentOfPeak) {
  // Table II rule 2: idle power is 40%-50% of peak.
  for (const ServerType& t : all_server_types()) {
    const double ratio = t.p_idle / t.p_peak;
    EXPECT_GE(ratio, 0.40) << t.name;
    EXPECT_LE(ratio, 0.50) << t.name;
  }
}

TEST(ServerCatalog, SmallServersAreTheMostEfficientPerComputeUnit) {
  // §III: "servers with small resource capacity usually consume lower power
  // than those with large resource capacity" — both idle and peak watts per
  // CPU unit must be non-decreasing with size, otherwise consolidating onto
  // small servers (the paper's stated mechanism) would not save energy.
  const auto& types = all_server_types();
  for (std::size_t k = 1; k < types.size(); ++k) {
    EXPECT_GE(types[k].p_peak / types[k].capacity.cpu,
              types[k - 1].p_peak / types[k - 1].capacity.cpu);
    EXPECT_GE(types[k].p_idle / types[k].capacity.cpu,
              types[k - 1].p_idle / types[k - 1].capacity.cpu);
  }
}

TEST(ServerCatalog, EveryVmTypeFitsOnSomeServer) {
  for (const VmType& vm_type : all_vm_types()) {
    bool fits = false;
    for (const ServerType& server_type : all_server_types())
      fits = fits || vm_type.demand.fits_within(server_type.capacity);
    EXPECT_TRUE(fits) << vm_type.name;
  }
}

TEST(ServerCatalog, StandardVmsFitOnTypes1To3) {
  // §IV-F allocates standard VMs on "types 1-3 of servers"; that only works
  // if every standard type fits on every one of them.
  for (const VmType& vm_type : standard_vm_types())
    for (const ServerType& server_type : server_types_1_to(3))
      EXPECT_TRUE(vm_type.demand.fits_within(server_type.capacity))
          << vm_type.name << " on " << server_type.name;
}

TEST(ServerCatalog, TypePrefixSelection) {
  EXPECT_EQ(server_types_1_to(1).size(), 1u);
  EXPECT_EQ(server_types_1_to(3).size(), 3u);
  EXPECT_EQ(server_types_1_to(5).size(), 5u);
  EXPECT_EQ(server_types_1_to(3).front().name, "server-type-1");
  EXPECT_EQ(server_types_1_to(3).back().name, "server-type-3");
}

TEST(MakeServer, AppliesIdAndTransitionTime) {
  const ServerSpec spec = make_server(all_server_types()[2], 17, 0.5);
  EXPECT_EQ(spec.id, 17);
  EXPECT_EQ(spec.type_name, "server-type-3");
  EXPECT_DOUBLE_EQ(spec.transition_time, 0.5);
  EXPECT_DOUBLE_EQ(spec.transition_cost(), spec.p_peak * 0.5);
  EXPECT_TRUE(spec.valid());
}

TEST(Datacenter, RandomFleetSamplesRequestedCount) {
  Rng rng(5);
  const auto fleet = make_random_fleet(40, all_server_types(), 1.0, rng);
  ASSERT_EQ(fleet.size(), 40u);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    EXPECT_EQ(fleet[i].id, static_cast<ServerId>(i));
    EXPECT_TRUE(fleet[i].valid());
  }
}

TEST(Datacenter, RandomFleetUsesAllTypesEventually) {
  Rng rng(6);
  const auto fleet = make_random_fleet(200, all_server_types(), 1.0, rng);
  std::set<std::string> names;
  for (const auto& s : fleet) names.insert(s.type_name);
  EXPECT_EQ(names.size(), 5u);
}

TEST(Datacenter, FleetByCountsIsDeterministic) {
  const auto fleet =
      make_fleet_by_counts(all_server_types(), {2, 0, 1, 0, 3}, 2.0);
  ASSERT_EQ(fleet.size(), 6u);
  EXPECT_EQ(fleet[0].type_name, "server-type-1");
  EXPECT_EQ(fleet[1].type_name, "server-type-1");
  EXPECT_EQ(fleet[2].type_name, "server-type-3");
  EXPECT_EQ(fleet[3].type_name, "server-type-5");
  for (std::size_t i = 0; i < fleet.size(); ++i)
    EXPECT_EQ(fleet[i].id, static_cast<ServerId>(i));
}

TEST(Datacenter, TotalCapacitySums) {
  const auto fleet = make_fleet_by_counts(server_types_1_to(1), {3}, 1.0);
  const Resources total = total_capacity(fleet);
  EXPECT_DOUBLE_EQ(total.cpu, 3 * all_server_types()[0].capacity.cpu);
  EXPECT_DOUBLE_EQ(total.mem, 3 * all_server_types()[0].capacity.mem);
}

}  // namespace
}  // namespace esva
