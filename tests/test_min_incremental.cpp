#include "core/min_incremental.h"

#include <gtest/gtest.h>

#include "cluster/timeline.h"
#include "core/cost_model.h"
#include "test_util.h"
#include "util/rng.h"

namespace esva {
namespace {

using testing::basic_server;
using testing::random_problem;
using testing::server;
using testing::vm;

Allocation run_alloc(const ProblemInstance& problem,
                     MinIncrementalAllocator::Options options = {}) {
  MinIncrementalAllocator allocator(options);
  Rng rng(1);
  return allocator.allocate(problem, rng);
}

TEST(MinIncremental, NameIsStable) {
  EXPECT_EQ(MinIncrementalAllocator().name(), "min-incremental");
}

TEST(MinIncremental, ConsolidatesOverlappingVmsOnOneServer) {
  // Two overlapping small VMs: putting the second on the already-busy server
  // costs only its run cost; a fresh server would cost idle + transition.
  const ProblemInstance p = make_problem(
      {vm(0, 1, 10, 2.0, 2.0), vm(1, 1, 10, 2.0, 2.0)},
      {basic_server(0), basic_server(1)});
  const Allocation alloc = run_alloc(p);
  EXPECT_EQ(alloc.assignment[0], alloc.assignment[1]);
}

TEST(MinIncremental, PrefersEnergyEfficientServer) {
  // Server 1 has identical capacity but lower idle power and unit power.
  const ProblemInstance p = make_problem(
      {vm(0, 1, 10, 2.0, 2.0)},
      {server(0, 10, 10, 100, 200), server(1, 10, 10, 50, 120)});
  const Allocation alloc = run_alloc(p);
  EXPECT_EQ(alloc.assignment[0], 1);
}

TEST(MinIncremental, PrefersLowTransitionCostWhenAllPoweredDown) {
  // Same power curves; only the transition time differs (paper §III reason 3).
  const ProblemInstance p = make_problem(
      {vm(0, 1, 2, 1.0, 1.0)},
      {server(0, 10, 10, 100, 200, /*transition_time=*/3.0),
       server(1, 10, 10, 100, 200, /*transition_time=*/0.5)});
  const Allocation alloc = run_alloc(p);
  EXPECT_EQ(alloc.assignment[0], 1);
}

TEST(MinIncremental, AvoidsOversizedServerAtLightLoad) {
  // A small VM should land on the small server (lower idle power), not the
  // big one (paper §III reason 2: high utilization of small servers).
  const ProblemInstance p = make_problem(
      {vm(0, 1, 20, 1.0, 1.0)},
      {server(0, 64, 192, 210, 500), server(1, 16, 32, 105, 210)});
  const Allocation alloc = run_alloc(p);
  EXPECT_EQ(alloc.assignment[0], 1);
}

TEST(MinIncremental, RespectsCapacityWhenConsolidating) {
  // Second VM does not fit next to the first; must go to server 1 even
  // though consolidation would be cheaper.
  const ProblemInstance p = make_problem(
      {vm(0, 1, 10, 8.0, 8.0), vm(1, 5, 12, 8.0, 8.0)},
      {basic_server(0), basic_server(1)});
  const Allocation alloc = run_alloc(p);
  EXPECT_EQ(alloc.assignment[0], 0);
  EXPECT_EQ(alloc.assignment[1], 1);
  EXPECT_EQ(validate_allocation(p, alloc), "");
}

TEST(MinIncremental, ReportsInfeasibleVmAsUnallocated) {
  const ProblemInstance p = make_problem(
      {vm(0, 1, 5, 2.0, 2.0), vm(1, 1, 5, 20.0, 2.0)},  // VM 1 fits nowhere
      {basic_server(0)});
  const Allocation alloc = run_alloc(p);
  EXPECT_EQ(alloc.assignment[0], 0);
  EXPECT_EQ(alloc.assignment[1], kNoServer);
  EXPECT_EQ(alloc.num_unallocated(), 1u);
}

TEST(MinIncremental, TieBreaksTowardLowestServerId) {
  // Identical servers, one VM: both deltas equal, server 0 must win.
  const ProblemInstance p = make_problem(
      {vm(0, 1, 5, 1.0, 1.0)}, {basic_server(0), basic_server(1)});
  EXPECT_EQ(run_alloc(p).assignment[0], 0);
}

TEST(MinIncremental, IsDeterministicAcrossRngs) {
  Rng rng1(1);
  const ProblemInstance p = random_problem(rng1, 20, 8);
  MinIncrementalAllocator allocator;
  Rng a(123);
  Rng b(999);
  EXPECT_EQ(allocator.allocate(p, a).assignment,
            allocator.allocate(p, b).assignment);
}

TEST(MinIncremental, BridgesGapInsteadOfNewServerWhenCheaper) {
  // Server 0 busy [1,10] and [14,20] (gap 3 > 2 would power-cycle).
  // A VM [11,13] on server 0 merges everything: delta = run + 3·100 idle
  // − refunded 200 transition = run + 100. A fresh server: run + 300 idle +
  // 200 transition. Consolidation wins.
  std::vector<VmSpec> vms{vm(0, 1, 10, 2.0, 2.0), vm(1, 14, 20, 2.0, 2.0),
                          vm(2, 11, 13, 1.0, 1.0)};
  const ProblemInstance p =
      make_problem(std::move(vms), {basic_server(0), basic_server(1)});
  const Allocation alloc = run_alloc(p);
  EXPECT_EQ(alloc.assignment[2], alloc.assignment[0]);
}

// Reference implementation: recompute the greedy choice naively (full server
// cost re-evaluation per candidate) and compare full assignments.
TEST(MinIncrementalProperty, MatchesNaiveGreedyReference) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(seed);
    const ProblemInstance p = random_problem(rng, 15, 6);

    // Naive greedy.
    Allocation expected;
    expected.assignment.assign(p.num_vms(), kNoServer);
    std::vector<std::vector<VmSpec>> hosted(p.num_servers());
    std::vector<ServerTimeline> timelines =
        make_timelines(p.servers, p.horizon);
    for (std::size_t j : ordered_indices(p, VmOrder::ByStartTime)) {
      const VmSpec& candidate = p.vms[j];
      ServerId best = kNoServer;
      Energy best_delta = kInf;
      for (std::size_t i = 0; i < p.num_servers(); ++i) {
        if (!timelines[i].can_fit(candidate)) continue;
        std::vector<VmSpec> with = hosted[i];
        with.push_back(candidate);
        const Energy delta = server_cost(p.servers[i], with) -
                             server_cost(p.servers[i], hosted[i]);
        if (delta < best_delta - 1e-9) {
          best_delta = delta;
          best = static_cast<ServerId>(i);
        }
      }
      if (best == kNoServer) continue;
      hosted[static_cast<std::size_t>(best)].push_back(candidate);
      timelines[static_cast<std::size_t>(best)].place(candidate);
      expected.assignment[j] = best;
    }

    const Allocation actual = run_alloc(p);
    ASSERT_EQ(actual.assignment, expected.assignment) << "seed " << seed;
    ASSERT_EQ(validate_allocation(p, actual, false), "");
  }
}

TEST(MinIncrementalProperty, AllocationsAlwaysFeasible) {
  for (std::uint64_t seed = 100; seed < 120; ++seed) {
    Rng rng(seed);
    const ProblemInstance p = random_problem(rng, 25, 10);
    const Allocation alloc = run_alloc(p);
    ASSERT_EQ(validate_allocation(p, alloc, false), "") << "seed " << seed;
  }
}

}  // namespace
}  // namespace esva
