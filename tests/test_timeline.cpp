#include "cluster/timeline.h"

#include <gtest/gtest.h>

#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/candidate_scan.h"
#include "core/cost_model.h"
#include "test_util.h"
#include "util/rng.h"

namespace esva {
namespace {

using testing::basic_server;
using testing::vm;

TEST(ServerTimeline, EmptyTimelineFitsAnythingWithinCapacity) {
  ServerTimeline timeline(basic_server(), 100);
  EXPECT_TRUE(timeline.can_fit(vm(0, 1, 100, 10.0, 10.0)));   // exactly full
  EXPECT_FALSE(timeline.can_fit(vm(0, 1, 10, 10.1, 1.0)));    // CPU over
  EXPECT_FALSE(timeline.can_fit(vm(0, 1, 10, 1.0, 10.1)));    // memory over
}

TEST(ServerTimeline, VmBeyondHorizonDoesNotFit) {
  ServerTimeline timeline(basic_server(), 50);
  EXPECT_TRUE(timeline.can_fit(vm(0, 45, 50)));
  EXPECT_FALSE(timeline.can_fit(vm(0, 45, 51)));
}

TEST(ServerTimeline, CapacityIsPerTimeUnitNotAggregate) {
  ServerTimeline timeline(basic_server(), 100);
  timeline.place(vm(0, 1, 50, 6.0, 1.0));
  // Overlapping VM needing 6 CPU doesn't fit (6+6 > 10)...
  EXPECT_FALSE(timeline.can_fit(vm(1, 25, 75, 6.0, 1.0)));
  // ...but the same VM after the first one finishes does.
  EXPECT_TRUE(timeline.can_fit(vm(1, 51, 100, 6.0, 1.0)));
  // And a smaller overlapping VM fits.
  EXPECT_TRUE(timeline.can_fit(vm(1, 25, 75, 4.0, 1.0)));
}

TEST(ServerTimeline, MemoryDimensionIsCheckedIndependently) {
  ServerTimeline timeline(basic_server(), 100);
  timeline.place(vm(0, 1, 50, 1.0, 9.0));
  EXPECT_FALSE(timeline.can_fit(vm(1, 50, 60, 1.0, 2.0)));  // mem clash at t=50
  EXPECT_TRUE(timeline.can_fit(vm(1, 51, 60, 1.0, 2.0)));
}

TEST(ServerTimeline, PlaceUpdatesBusyAndUsage) {
  ServerTimeline timeline(basic_server(), 100);
  timeline.place(vm(0, 10, 20, 3.0, 2.0));
  timeline.place(vm(1, 15, 30, 2.0, 1.0));
  EXPECT_EQ(timeline.busy().intervals().size(), 1u);
  EXPECT_EQ(timeline.busy().intervals()[0], (Interval{10, 30}));
  EXPECT_DOUBLE_EQ(timeline.cpu_usage_at(12), 3.0);
  EXPECT_DOUBLE_EQ(timeline.cpu_usage_at(17), 5.0);
  EXPECT_DOUBLE_EQ(timeline.cpu_usage_at(25), 2.0);
  EXPECT_DOUBLE_EQ(timeline.cpu_usage_at(31), 0.0);
  EXPECT_DOUBLE_EQ(timeline.mem_usage_at(17), 3.0);
  EXPECT_EQ(timeline.busy_time(), 21);
  EXPECT_EQ(timeline.vms(), (std::vector<VmId>{0, 1}));
}

TEST(ServerTimeline, DisjointVmsKeepSeparateBusySegments) {
  ServerTimeline timeline(basic_server(), 100);
  timeline.place(vm(0, 1, 5));
  timeline.place(vm(1, 10, 15));
  EXPECT_EQ(timeline.busy().size(), 2u);
  EXPECT_EQ(timeline.busy().gaps(),
            (std::vector<Interval>{{6, 9}}));
}

TEST(ServerTimeline, UndoRestoresEverything) {
  ServerTimeline timeline(basic_server(), 100);
  timeline.place(vm(0, 10, 20, 3.0, 2.0));
  const auto busy_before = timeline.busy().intervals();
  const double cpu_before = timeline.max_cpu_usage(1, 100);

  const VmSpec second = vm(1, 15, 40, 2.0, 1.0);
  const auto record = timeline.place(second);
  timeline.undo(record, second);

  EXPECT_EQ(timeline.busy().intervals(), busy_before);
  EXPECT_DOUBLE_EQ(timeline.max_cpu_usage(1, 100), cpu_before);
  EXPECT_DOUBLE_EQ(timeline.max_mem_usage(21, 100), 0.0);
  EXPECT_EQ(timeline.vms(), (std::vector<VmId>{0}));
}

TEST(ServerTimeline, UndoRestoresMergedSegments) {
  ServerTimeline timeline(basic_server(), 100);
  timeline.place(vm(0, 1, 5));
  timeline.place(vm(1, 10, 15));
  // Bridge the two segments, then undo the bridge.
  const VmSpec bridge = vm(2, 4, 12);
  const auto record = timeline.place(bridge);
  EXPECT_EQ(timeline.busy().size(), 1u);
  timeline.undo(record, bridge);
  EXPECT_EQ(timeline.busy().intervals(),
            (std::vector<Interval>{{1, 5}, {10, 15}}));
}

TEST(ServerTimeline, LifoUndoPropertyOnRandomPlacements) {
  Rng rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    ServerTimeline timeline(basic_server(), 200);
    // A couple of permanent residents.
    timeline.place(vm(0, 20, 60, 1.0, 1.0));
    timeline.place(vm(1, 100, 130, 2.0, 2.0));
    const auto busy_before = timeline.busy().intervals();

    // Place a random stack of VMs, then unwind it.
    std::vector<std::pair<ServerTimeline::PlaceRecord, VmSpec>> stack;
    const int pushes = static_cast<int>(rng.uniform_int(1, 6));
    for (int k = 0; k < pushes; ++k) {
      const Time start = static_cast<Time>(rng.uniform_int(1, 180));
      const Time end = static_cast<Time>(
          rng.uniform_int(start, std::min<Time>(200, start + 40)));
      const VmSpec extra = vm(10 + k, start, end, 0.5, 0.5);
      if (!timeline.can_fit(extra)) continue;
      stack.emplace_back(timeline.place(extra), extra);
    }
    while (!stack.empty()) {
      timeline.undo(stack.back().first, stack.back().second);
      stack.pop_back();
    }
    ASSERT_EQ(timeline.busy().intervals(), busy_before) << "trial " << trial;
    ASSERT_DOUBLE_EQ(timeline.max_cpu_usage(1, 19), 0.0);
    ASSERT_DOUBLE_EQ(timeline.max_cpu_usage(61, 99), 0.0);
  }
}

// --- epoch counter (backs core/candidate_scan.h's ScanCache) ---------------

TEST(ServerTimeline, EpochStartsAtZeroAndBumpsOnEveryMutation) {
  ServerTimeline timeline(basic_server(), 100);
  EXPECT_EQ(timeline.epoch(), 0u);

  const VmSpec first = vm(0, 10, 20, 3.0, 2.0);
  timeline.place(first);
  EXPECT_EQ(timeline.epoch(), 1u);

  const VmSpec second = vm(1, 15, 40, 2.0, 1.0);
  const auto record = timeline.place(second);
  EXPECT_EQ(timeline.epoch(), 2u);

  // Undo restores the *state* but advances the epoch — the timeline mutated,
  // so any cached probe against epoch 2 must not be reused.
  timeline.undo(record, second);
  EXPECT_EQ(timeline.epoch(), 3u);
}

TEST(ServerTimeline, ReadsDoNotAdvanceEpoch) {
  ServerTimeline timeline(basic_server(), 100);
  timeline.place(vm(0, 10, 20, 3.0, 2.0));
  const std::uint64_t before = timeline.epoch();
  (void)timeline.can_fit(vm(1, 5, 50, 1.0, 1.0));
  (void)timeline.check_fit(vm(2, 5, 50, 20.0, 1.0));
  (void)timeline.max_cpu_usage(1, 100);
  (void)timeline.busy_time();
  EXPECT_EQ(timeline.epoch(), before);
}

// Property: a probe the O(1) envelope triage decides (quick_fit != kUnknown)
// never touches the memo — no hit, no miss, no entry, no epoch adoption; an
// undecided probe's entry is reused iff the timeline's epoch is unchanged
// since that shape was last probed — and whichever path answers, the probe
// returns exactly what a direct can_fit/incremental_cost evaluation returns.
TEST(ScanCacheProperty, QuickProbesSkipMemoAndEntriesReusedIffEpochUnchanged) {
  Rng rng(123);
  const CostOptions cost_options;
  const auto score = [&](const ServerTimeline& t,
                         const VmSpec& v) { return incremental_cost(t, v, cost_options); };

  for (int trial = 0; trial < 20; ++trial) {
    ServerTimeline timeline(basic_server(), 200);
    // A heavy resident keeps the window peak at 8 CPU, so probes needing
    // more than 2 CPU are envelope-undecided (memo path) while light probes
    // quick-accept; a >10 CPU shape quick-rejects against the 0-usage floor.
    timeline.place(vm(999, 1, 100, 8.0, 1.0));

    ScanCache cache;
    cache.resize(1);

    // Reference model of the slot: the epoch its entries were stored under,
    // and the set of shapes stored. Mirrors the documented invalidation
    // rule, which only undecided probes engage.
    std::optional<std::uint64_t> model_epoch;
    std::unordered_map<VmShape, bool, VmShapeHash> model_shapes;

    // A small pool of repeating shapes so hits actually occur (CPU 1..6
    // spans quick-accepted and undecided; 10.5 always quick-rejects), plus
    // LIFO place/undo mutations interleaved with probes.
    std::vector<VmSpec> shapes;
    for (int s = 0; s < 5; ++s) {
      const Time start = static_cast<Time>(rng.uniform_int(1, 150));
      const Time end =
          static_cast<Time>(rng.uniform_int(start, start + 40));
      shapes.push_back(vm(100 + s, start, end, 1.0 + s * 1.25, 1.0 + s));
    }
    shapes.push_back(vm(106, 10, 40, 10.5, 1.0));  // beyond capacity
    std::vector<std::pair<ServerTimeline::PlaceRecord, VmSpec>> stack;
    int next_id = 0;

    for (int step = 0; step < 300; ++step) {
      const int action = static_cast<int>(rng.uniform_int(0, 9));
      if (action < 6) {  // probe a random repeating shape
        const VmSpec& probe_vm = shapes[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(shapes.size()) - 1))];
        const QuickFit quick = timeline.quick_fit(probe_vm);
        bool expect_hit = false;
        if (quick == QuickFit::kUnknown) {
          if (model_epoch != timeline.epoch()) {
            model_epoch = timeline.epoch();
            model_shapes.clear();
          }
          const VmShape key{probe_vm.demand.cpu, probe_vm.demand.mem,
                            probe_vm.start, probe_vm.end};
          expect_hit = model_shapes.count(key) > 0;
          model_shapes.emplace(key, true);
        }

        const std::int64_t hits_before = cache.hits();
        const std::int64_t misses_before = cache.misses();
        const std::int64_t quick_before = cache.quick_decided();
        const std::optional<double> cached =
            cache.probe(0, timeline, probe_vm, ScanCache::key_of(probe_vm),
                        quick, score);
        if (quick == QuickFit::kUnknown) {
          ASSERT_EQ(cache.hits() - hits_before, expect_hit ? 1 : 0)
              << "trial " << trial << " step " << step;
          ASSERT_EQ(cache.misses() - misses_before, expect_hit ? 0 : 1);
          ASSERT_EQ(cache.quick_decided(), quick_before);
        } else {
          // Envelope-decided: counted as quick, memo untouched.
          ASSERT_EQ(cache.quick_decided() - quick_before, 1)
              << "trial " << trial << " step " << step;
          ASSERT_EQ(cache.hits(), hits_before);
          ASSERT_EQ(cache.misses(), misses_before);
          // The triage verdict itself must agree with can_fit.
          ASSERT_EQ(quick == QuickFit::kFits, timeline.can_fit(probe_vm));
        }

        // Whichever path answered, the value must be the direct
        // recomputation bit-for-bit.
        const std::optional<double> direct =
            timeline.can_fit(probe_vm)
                ? std::optional<double>(score(timeline, probe_vm))
                : std::nullopt;
        ASSERT_EQ(cached.has_value(), direct.has_value());
        if (cached) {
          ASSERT_EQ(*cached, *direct);  // exact, not approximate
        }
      } else if (action < 8 || stack.empty()) {  // place
        const Time start = static_cast<Time>(rng.uniform_int(1, 150));
        const Time end = static_cast<Time>(rng.uniform_int(start, start + 30));
        const VmSpec extra = vm(next_id++, start, end, 0.5, 0.5);
        if (!timeline.can_fit(extra)) continue;
        stack.emplace_back(timeline.place(extra), extra);
      } else {  // undo (LIFO)
        timeline.undo(stack.back().first, stack.back().second);
        stack.pop_back();
      }
    }
    // All three probe paths must have been exercised.
    EXPECT_GT(cache.hits(), 0) << "trial " << trial;
    EXPECT_GT(cache.misses(), 0) << "trial " << trial;
    EXPECT_GT(cache.quick_decided(), 0) << "trial " << trial;
  }
}

// --- quick_fit: the O(1) envelope triage in front of the trees -------------

TEST(QuickFitTriage, DecidesFromWindowEnvelope) {
  ServerTimeline timeline(basic_server(), 100);
  timeline.place(vm(0, 1, 50, 6.0, 2.0));  // peak 6 CPU / 2 MEM, floor 0
  // Peak + demand fits: certain accept without a tree query.
  EXPECT_EQ(timeline.quick_fit(vm(1, 25, 75, 4.0, 1.0)), QuickFit::kFits);
  // Even the emptiest unit lacks spare CPU: certain reject.
  EXPECT_EQ(timeline.quick_fit(vm(2, 60, 90, 10.5, 1.0)),
            QuickFit::kCannotFit);
  // Peak + demand over, floor + demand under: undecided.
  EXPECT_EQ(timeline.quick_fit(vm(3, 60, 90, 5.0, 1.0)), QuickFit::kUnknown);
  // Out of window: certain reject.
  EXPECT_EQ(timeline.quick_fit(vm(4, 90, 101, 1.0, 1.0)),
            QuickFit::kCannotFit);
}

TEST(QuickFitTriage, AgreesWithCanFitOnRandomPlacements) {
  Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    ServerTimeline timeline(basic_server(), 120);
    const int residents = static_cast<int>(rng.uniform_int(0, 6));
    for (int k = 0; k < residents; ++k) {
      const Time start = static_cast<Time>(rng.uniform_int(1, 100));
      const Time end = static_cast<Time>(rng.uniform_int(start, start + 30));
      const VmSpec resident = vm(k, start, end, 1.0 + (k % 3), 1.0 + (k % 4));
      if (timeline.can_fit(resident)) timeline.place(resident);
    }
    for (int probe = 0; probe < 40; ++probe) {
      const Time start = static_cast<Time>(rng.uniform_int(1, 110));
      const Time end = static_cast<Time>(rng.uniform_int(start, start + 40));
      const VmSpec candidate =
          vm(100 + probe, start, end, rng.uniform_double(0.1, 12.0),
             rng.uniform_double(0.1, 12.0));
      const QuickFit quick = timeline.quick_fit(candidate);
      if (quick != QuickFit::kUnknown) {
        ASSERT_EQ(quick == QuickFit::kFits, timeline.can_fit(candidate))
            << "trial " << trial << " probe " << probe;
      }
    }
  }
}

// Boundary cases of the envelope triage, table-driven: exact-capacity fits
// (the <= capacity + kEps comparison at equality), zero-demand VMs, and
// window edges at the horizon and at an advanced base. Each expectation
// pins the QuickFit verdict AND, where decided, its agreement with the
// exact can_fit answer — the same dual contract the SoA envelope sweep
// (core/envelope_store.h) inherits verbatim (tests/test_envelope_scan.cpp).
TEST(QuickFitTriage, BoundaryCasesTableDriven) {
  // basic_server: 10 CPU / 10 GiB. Resident [1,50] at 6 CPU / 2 MEM, so the
  // window envelope is peak (6, 2), floor (0, 0) over horizon 100.
  ServerTimeline timeline(basic_server(), 100);
  timeline.place(vm(0, 1, 50, 6.0, 2.0));

  struct Case {
    const char* why;
    VmSpec candidate;
    QuickFit expected;
  };
  const Case cases[] = {
      {"exact-capacity fit: peak + demand == capacity in both dimensions",
       vm(1, 25, 75, 4.0, 8.0), QuickFit::kFits},
      {"zero-demand VM always quick-fits inside the window",
       vm(2, 1, 100, 0.0, 0.0), QuickFit::kFits},
      {"zero-demand VM past the horizon is still a window reject",
       vm(3, 90, 101, 0.0, 0.0), QuickFit::kCannotFit},
      {"window edge: single unit exactly at the horizon",
       vm(4, 100, 100, 1.0, 1.0), QuickFit::kFits},
      {"window edge: end one past the horizon",
       vm(5, 95, 101, 1.0, 1.0), QuickFit::kCannotFit},
      {"demand over capacity even on the empty floor",
       vm(6, 60, 90, 10.5, 1.0), QuickFit::kCannotFit},
      {"exact-capacity on the floor: floor + demand == capacity stays "
       "undecided (not > capacity + kEps)",
       vm(7, 25, 75, 10.0, 1.0), QuickFit::kUnknown},
      {"peak + demand just over, floor + demand under: undecided",
       vm(8, 60, 90, 4.1, 1.0), QuickFit::kUnknown},
  };
  for (const Case& c : cases) {
    const QuickFit quick = timeline.quick_fit(c.candidate);
    EXPECT_EQ(quick, c.expected) << c.why;
    if (quick != QuickFit::kUnknown) {
      EXPECT_EQ(quick == QuickFit::kFits, timeline.can_fit(c.candidate))
          << c.why << " (decided verdicts must agree with can_fit)";
    }
  }
}

TEST(QuickFitTriage, AdvancedBaseRejectsStartsBehindTheWindow) {
  // A rebuilt (rolling-GC) timeline with base 10: starts behind the base are
  // window rejects, starts exactly at the base are triaged normally.
  ServerTimeline timeline(basic_server(), /*base=*/10, /*horizon=*/100);
  struct Case {
    const char* why;
    VmSpec candidate;
    QuickFit expected;
  };
  const Case cases[] = {
      {"start one behind the base", vm(1, 9, 20, 1.0, 1.0),
       QuickFit::kCannotFit},
      {"start exactly at the base", vm(2, 10, 20, 1.0, 1.0), QuickFit::kFits},
      {"whole window, exact capacity", vm(3, 10, 100, 10.0, 10.0),
       QuickFit::kFits},
      {"whole window, capacity exceeded", vm(4, 10, 100, 10.5, 1.0),
       QuickFit::kCannotFit},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(timeline.quick_fit(c.candidate), c.expected) << c.why;
    EXPECT_EQ(c.expected == QuickFit::kFits, timeline.can_fit(c.candidate))
        << c.why;
  }
}

// --- profiled VMs: equal-demand runs are applied/checked as range ops ------

VmSpec profiled_vm(VmId id, Time start, std::vector<Resources> levels) {
  VmSpec spec;
  spec.id = id;
  spec.type_name = "profiled";
  spec.start = start;
  spec.end = start + static_cast<Time>(levels.size()) - 1;
  spec.set_profile(std::move(levels));
  return spec;
}

TEST(ProfiledTimeline, CoalescedRunsMatchPerUnitSemantics) {
  ServerTimeline timeline(basic_server(), 100);
  // Three runs: [10,12] at (2,1), [13,15] at (6,3), [16,17] at (1,8); the
  // middle run also has a zero-CPU tail to cover the skip-zero-delta path.
  const VmSpec workload = profiled_vm(
      0, 10,
      {{2, 1}, {2, 1}, {2, 1}, {6, 3}, {6, 3}, {6, 3}, {1, 8}, {1, 8},
       {0, 2}, {0, 2}});
  ASSERT_TRUE(timeline.can_fit(workload));
  const auto record = timeline.place(workload);

  // Usage at every unit equals the profile level of that unit's run.
  for (Time t = 10; t <= 19; ++t) {
    const Resources r = workload.demand_at(t);
    EXPECT_DOUBLE_EQ(timeline.cpu_usage_at(t), r.cpu) << "t=" << t;
    EXPECT_DOUBLE_EQ(timeline.mem_usage_at(t), r.mem) << "t=" << t;
  }
  EXPECT_DOUBLE_EQ(timeline.cpu_usage_at(9), 0.0);
  EXPECT_DOUBLE_EQ(timeline.cpu_usage_at(20), 0.0);

  // A stable VM fits against the valleys but not across the (6,3) burst.
  EXPECT_TRUE(timeline.can_fit(vm(1, 16, 30, 5.0, 1.0)));
  EXPECT_FALSE(timeline.can_fit(vm(2, 10, 15, 5.0, 1.0)));

  // A second profiled VM whose burst interleaves with the valleys fits.
  const VmSpec complement = profiled_vm(
      3, 10,
      {{7, 8}, {7, 8}, {7, 8}, {2, 2}, {2, 2}, {2, 2}, {8, 1}, {8, 1},
       {9, 7}, {9, 7}});
  EXPECT_TRUE(timeline.can_fit(complement));
  // check_fit agrees and localizes a violation inside the right run.
  const VmSpec clash = profiled_vm(4, 12, {{1, 1}, {5, 1}, {5, 1}});
  ASSERT_FALSE(timeline.can_fit(clash));
  const FitCheck fit = timeline.check_fit(clash);
  EXPECT_FALSE(fit.ok);
  EXPECT_EQ(fit.reject, FitReject::Cpu);
  EXPECT_EQ(fit.at, 13);  // first unit where 6 (resident) + 5 > 10

  // Undo restores the exact pre-placement state.
  timeline.undo(record, workload);
  for (Time t = 9; t <= 20; ++t) {
    EXPECT_DOUBLE_EQ(timeline.cpu_usage_at(t), 0.0) << "t=" << t;
    EXPECT_DOUBLE_EQ(timeline.mem_usage_at(t), 0.0) << "t=" << t;
  }
}

TEST(MakeTimelines, OnePerServer) {
  std::vector<ServerSpec> servers{basic_server(0), basic_server(1)};
  const auto timelines = make_timelines(servers, 42);
  ASSERT_EQ(timelines.size(), 2u);
  EXPECT_EQ(timelines[0].horizon(), 42);
  EXPECT_EQ(timelines[1].spec().id, 1);
}

}  // namespace
}  // namespace esva
