#include "cluster/timeline.h"

#include <gtest/gtest.h>

#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/candidate_scan.h"
#include "core/cost_model.h"
#include "test_util.h"
#include "util/rng.h"

namespace esva {
namespace {

using testing::basic_server;
using testing::vm;

TEST(ServerTimeline, EmptyTimelineFitsAnythingWithinCapacity) {
  ServerTimeline timeline(basic_server(), 100);
  EXPECT_TRUE(timeline.can_fit(vm(0, 1, 100, 10.0, 10.0)));   // exactly full
  EXPECT_FALSE(timeline.can_fit(vm(0, 1, 10, 10.1, 1.0)));    // CPU over
  EXPECT_FALSE(timeline.can_fit(vm(0, 1, 10, 1.0, 10.1)));    // memory over
}

TEST(ServerTimeline, VmBeyondHorizonDoesNotFit) {
  ServerTimeline timeline(basic_server(), 50);
  EXPECT_TRUE(timeline.can_fit(vm(0, 45, 50)));
  EXPECT_FALSE(timeline.can_fit(vm(0, 45, 51)));
}

TEST(ServerTimeline, CapacityIsPerTimeUnitNotAggregate) {
  ServerTimeline timeline(basic_server(), 100);
  timeline.place(vm(0, 1, 50, 6.0, 1.0));
  // Overlapping VM needing 6 CPU doesn't fit (6+6 > 10)...
  EXPECT_FALSE(timeline.can_fit(vm(1, 25, 75, 6.0, 1.0)));
  // ...but the same VM after the first one finishes does.
  EXPECT_TRUE(timeline.can_fit(vm(1, 51, 100, 6.0, 1.0)));
  // And a smaller overlapping VM fits.
  EXPECT_TRUE(timeline.can_fit(vm(1, 25, 75, 4.0, 1.0)));
}

TEST(ServerTimeline, MemoryDimensionIsCheckedIndependently) {
  ServerTimeline timeline(basic_server(), 100);
  timeline.place(vm(0, 1, 50, 1.0, 9.0));
  EXPECT_FALSE(timeline.can_fit(vm(1, 50, 60, 1.0, 2.0)));  // mem clash at t=50
  EXPECT_TRUE(timeline.can_fit(vm(1, 51, 60, 1.0, 2.0)));
}

TEST(ServerTimeline, PlaceUpdatesBusyAndUsage) {
  ServerTimeline timeline(basic_server(), 100);
  timeline.place(vm(0, 10, 20, 3.0, 2.0));
  timeline.place(vm(1, 15, 30, 2.0, 1.0));
  EXPECT_EQ(timeline.busy().intervals().size(), 1u);
  EXPECT_EQ(timeline.busy().intervals()[0], (Interval{10, 30}));
  EXPECT_DOUBLE_EQ(timeline.cpu_usage_at(12), 3.0);
  EXPECT_DOUBLE_EQ(timeline.cpu_usage_at(17), 5.0);
  EXPECT_DOUBLE_EQ(timeline.cpu_usage_at(25), 2.0);
  EXPECT_DOUBLE_EQ(timeline.cpu_usage_at(31), 0.0);
  EXPECT_DOUBLE_EQ(timeline.mem_usage_at(17), 3.0);
  EXPECT_EQ(timeline.busy_time(), 21);
  EXPECT_EQ(timeline.vms(), (std::vector<VmId>{0, 1}));
}

TEST(ServerTimeline, DisjointVmsKeepSeparateBusySegments) {
  ServerTimeline timeline(basic_server(), 100);
  timeline.place(vm(0, 1, 5));
  timeline.place(vm(1, 10, 15));
  EXPECT_EQ(timeline.busy().size(), 2u);
  EXPECT_EQ(timeline.busy().gaps(),
            (std::vector<Interval>{{6, 9}}));
}

TEST(ServerTimeline, UndoRestoresEverything) {
  ServerTimeline timeline(basic_server(), 100);
  timeline.place(vm(0, 10, 20, 3.0, 2.0));
  const auto busy_before = timeline.busy().intervals();
  const double cpu_before = timeline.max_cpu_usage(1, 100);

  const VmSpec second = vm(1, 15, 40, 2.0, 1.0);
  const auto record = timeline.place(second);
  timeline.undo(record, second);

  EXPECT_EQ(timeline.busy().intervals(), busy_before);
  EXPECT_DOUBLE_EQ(timeline.max_cpu_usage(1, 100), cpu_before);
  EXPECT_DOUBLE_EQ(timeline.max_mem_usage(21, 100), 0.0);
  EXPECT_EQ(timeline.vms(), (std::vector<VmId>{0}));
}

TEST(ServerTimeline, UndoRestoresMergedSegments) {
  ServerTimeline timeline(basic_server(), 100);
  timeline.place(vm(0, 1, 5));
  timeline.place(vm(1, 10, 15));
  // Bridge the two segments, then undo the bridge.
  const VmSpec bridge = vm(2, 4, 12);
  const auto record = timeline.place(bridge);
  EXPECT_EQ(timeline.busy().size(), 1u);
  timeline.undo(record, bridge);
  EXPECT_EQ(timeline.busy().intervals(),
            (std::vector<Interval>{{1, 5}, {10, 15}}));
}

TEST(ServerTimeline, LifoUndoPropertyOnRandomPlacements) {
  Rng rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    ServerTimeline timeline(basic_server(), 200);
    // A couple of permanent residents.
    timeline.place(vm(0, 20, 60, 1.0, 1.0));
    timeline.place(vm(1, 100, 130, 2.0, 2.0));
    const auto busy_before = timeline.busy().intervals();

    // Place a random stack of VMs, then unwind it.
    std::vector<std::pair<ServerTimeline::PlaceRecord, VmSpec>> stack;
    const int pushes = static_cast<int>(rng.uniform_int(1, 6));
    for (int k = 0; k < pushes; ++k) {
      const Time start = static_cast<Time>(rng.uniform_int(1, 180));
      const Time end = static_cast<Time>(
          rng.uniform_int(start, std::min<Time>(200, start + 40)));
      const VmSpec extra = vm(10 + k, start, end, 0.5, 0.5);
      if (!timeline.can_fit(extra)) continue;
      stack.emplace_back(timeline.place(extra), extra);
    }
    while (!stack.empty()) {
      timeline.undo(stack.back().first, stack.back().second);
      stack.pop_back();
    }
    ASSERT_EQ(timeline.busy().intervals(), busy_before) << "trial " << trial;
    ASSERT_DOUBLE_EQ(timeline.max_cpu_usage(1, 19), 0.0);
    ASSERT_DOUBLE_EQ(timeline.max_cpu_usage(61, 99), 0.0);
  }
}

// --- epoch counter (backs core/candidate_scan.h's ScanCache) ---------------

TEST(ServerTimeline, EpochStartsAtZeroAndBumpsOnEveryMutation) {
  ServerTimeline timeline(basic_server(), 100);
  EXPECT_EQ(timeline.epoch(), 0u);

  const VmSpec first = vm(0, 10, 20, 3.0, 2.0);
  timeline.place(first);
  EXPECT_EQ(timeline.epoch(), 1u);

  const VmSpec second = vm(1, 15, 40, 2.0, 1.0);
  const auto record = timeline.place(second);
  EXPECT_EQ(timeline.epoch(), 2u);

  // Undo restores the *state* but advances the epoch — the timeline mutated,
  // so any cached probe against epoch 2 must not be reused.
  timeline.undo(record, second);
  EXPECT_EQ(timeline.epoch(), 3u);
}

TEST(ServerTimeline, ReadsDoNotAdvanceEpoch) {
  ServerTimeline timeline(basic_server(), 100);
  timeline.place(vm(0, 10, 20, 3.0, 2.0));
  const std::uint64_t before = timeline.epoch();
  (void)timeline.can_fit(vm(1, 5, 50, 1.0, 1.0));
  (void)timeline.check_fit(vm(2, 5, 50, 20.0, 1.0));
  (void)timeline.max_cpu_usage(1, 100);
  (void)timeline.busy_time();
  EXPECT_EQ(timeline.epoch(), before);
}

// Property: a ScanCache entry is reused iff the timeline's epoch is unchanged
// since that shape was last probed — and whether reused or recomputed, the
// probe returns exactly what a direct can_fit/incremental_cost evaluation
// returns.
TEST(ScanCacheProperty, EntryReusedIffEpochUnchangedAndValuesExact) {
  Rng rng(123);
  const CostOptions cost_options;
  const auto score = [&](const ServerTimeline& t,
                         const VmSpec& v) { return incremental_cost(t, v, cost_options); };

  for (int trial = 0; trial < 20; ++trial) {
    ServerTimeline timeline(basic_server(), 200);
    ScanCache cache;
    cache.resize(1);

    // Reference model of the slot: the epoch its entries were stored under,
    // and the set of shapes stored. Mirrors the documented invalidation rule.
    std::optional<std::uint64_t> model_epoch;
    std::unordered_map<VmShape, bool, VmShapeHash> model_shapes;

    // A small pool of repeating shapes so hits actually occur, plus LIFO
    // place/undo mutations interleaved with probes.
    std::vector<VmSpec> shapes;
    for (int s = 0; s < 5; ++s) {
      const Time start = static_cast<Time>(rng.uniform_int(1, 150));
      const Time end =
          static_cast<Time>(rng.uniform_int(start, start + 40));
      shapes.push_back(vm(100 + s, start, end, 1.0 + s * 0.5, 1.0 + s));
    }
    std::vector<std::pair<ServerTimeline::PlaceRecord, VmSpec>> stack;
    int next_id = 0;

    for (int step = 0; step < 300; ++step) {
      const int action = static_cast<int>(rng.uniform_int(0, 9));
      if (action < 6) {  // probe a random repeating shape
        const VmSpec& probe_vm =
            shapes[static_cast<std::size_t>(rng.uniform_int(0, 4))];
        if (model_epoch != timeline.epoch()) {
          model_epoch = timeline.epoch();
          model_shapes.clear();
        }
        const VmShape key{probe_vm.demand.cpu, probe_vm.demand.mem,
                          probe_vm.start, probe_vm.end};
        const bool expect_hit = model_shapes.count(key) > 0;
        model_shapes.emplace(key, true);

        const std::int64_t hits_before = cache.hits();
        const std::optional<double> cached =
            cache.probe(0, timeline, probe_vm, score);
        ASSERT_EQ(cache.hits() - hits_before, expect_hit ? 1 : 0)
            << "trial " << trial << " step " << step;

        // Whether it hit or missed, the value must be the direct
        // recomputation bit-for-bit.
        const std::optional<double> direct =
            timeline.can_fit(probe_vm)
                ? std::optional<double>(score(timeline, probe_vm))
                : std::nullopt;
        ASSERT_EQ(cached.has_value(), direct.has_value());
        if (cached) ASSERT_EQ(*cached, *direct);  // exact, not approximate
      } else if (action < 8 || stack.empty()) {  // place
        const Time start = static_cast<Time>(rng.uniform_int(1, 150));
        const Time end = static_cast<Time>(rng.uniform_int(start, start + 30));
        const VmSpec extra = vm(next_id++, start, end, 0.5, 0.5);
        if (!timeline.can_fit(extra)) continue;
        stack.emplace_back(timeline.place(extra), extra);
      } else {  // undo (LIFO)
        timeline.undo(stack.back().first, stack.back().second);
        stack.pop_back();
      }
    }
    // The repeating shapes must have produced genuine reuse.
    EXPECT_GT(cache.hits(), 0) << "trial " << trial;
  }
}

TEST(MakeTimelines, OnePerServer) {
  std::vector<ServerSpec> servers{basic_server(0), basic_server(1)};
  const auto timelines = make_timelines(servers, 42);
  ASSERT_EQ(timelines.size(), 2u);
  EXPECT_EQ(timelines[0].horizon(), 42);
  EXPECT_EQ(timelines[1].spec().id, 1);
}

}  // namespace
}  // namespace esva
