#include "cluster/timeline.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/rng.h"

namespace esva {
namespace {

using testing::basic_server;
using testing::vm;

TEST(ServerTimeline, EmptyTimelineFitsAnythingWithinCapacity) {
  ServerTimeline timeline(basic_server(), 100);
  EXPECT_TRUE(timeline.can_fit(vm(0, 1, 100, 10.0, 10.0)));   // exactly full
  EXPECT_FALSE(timeline.can_fit(vm(0, 1, 10, 10.1, 1.0)));    // CPU over
  EXPECT_FALSE(timeline.can_fit(vm(0, 1, 10, 1.0, 10.1)));    // memory over
}

TEST(ServerTimeline, VmBeyondHorizonDoesNotFit) {
  ServerTimeline timeline(basic_server(), 50);
  EXPECT_TRUE(timeline.can_fit(vm(0, 45, 50)));
  EXPECT_FALSE(timeline.can_fit(vm(0, 45, 51)));
}

TEST(ServerTimeline, CapacityIsPerTimeUnitNotAggregate) {
  ServerTimeline timeline(basic_server(), 100);
  timeline.place(vm(0, 1, 50, 6.0, 1.0));
  // Overlapping VM needing 6 CPU doesn't fit (6+6 > 10)...
  EXPECT_FALSE(timeline.can_fit(vm(1, 25, 75, 6.0, 1.0)));
  // ...but the same VM after the first one finishes does.
  EXPECT_TRUE(timeline.can_fit(vm(1, 51, 100, 6.0, 1.0)));
  // And a smaller overlapping VM fits.
  EXPECT_TRUE(timeline.can_fit(vm(1, 25, 75, 4.0, 1.0)));
}

TEST(ServerTimeline, MemoryDimensionIsCheckedIndependently) {
  ServerTimeline timeline(basic_server(), 100);
  timeline.place(vm(0, 1, 50, 1.0, 9.0));
  EXPECT_FALSE(timeline.can_fit(vm(1, 50, 60, 1.0, 2.0)));  // mem clash at t=50
  EXPECT_TRUE(timeline.can_fit(vm(1, 51, 60, 1.0, 2.0)));
}

TEST(ServerTimeline, PlaceUpdatesBusyAndUsage) {
  ServerTimeline timeline(basic_server(), 100);
  timeline.place(vm(0, 10, 20, 3.0, 2.0));
  timeline.place(vm(1, 15, 30, 2.0, 1.0));
  EXPECT_EQ(timeline.busy().intervals().size(), 1u);
  EXPECT_EQ(timeline.busy().intervals()[0], (Interval{10, 30}));
  EXPECT_DOUBLE_EQ(timeline.cpu_usage_at(12), 3.0);
  EXPECT_DOUBLE_EQ(timeline.cpu_usage_at(17), 5.0);
  EXPECT_DOUBLE_EQ(timeline.cpu_usage_at(25), 2.0);
  EXPECT_DOUBLE_EQ(timeline.cpu_usage_at(31), 0.0);
  EXPECT_DOUBLE_EQ(timeline.mem_usage_at(17), 3.0);
  EXPECT_EQ(timeline.busy_time(), 21);
  EXPECT_EQ(timeline.vms(), (std::vector<VmId>{0, 1}));
}

TEST(ServerTimeline, DisjointVmsKeepSeparateBusySegments) {
  ServerTimeline timeline(basic_server(), 100);
  timeline.place(vm(0, 1, 5));
  timeline.place(vm(1, 10, 15));
  EXPECT_EQ(timeline.busy().size(), 2u);
  EXPECT_EQ(timeline.busy().gaps(),
            (std::vector<Interval>{{6, 9}}));
}

TEST(ServerTimeline, UndoRestoresEverything) {
  ServerTimeline timeline(basic_server(), 100);
  timeline.place(vm(0, 10, 20, 3.0, 2.0));
  const auto busy_before = timeline.busy().intervals();
  const double cpu_before = timeline.max_cpu_usage(1, 100);

  const VmSpec second = vm(1, 15, 40, 2.0, 1.0);
  const auto record = timeline.place(second);
  timeline.undo(record, second);

  EXPECT_EQ(timeline.busy().intervals(), busy_before);
  EXPECT_DOUBLE_EQ(timeline.max_cpu_usage(1, 100), cpu_before);
  EXPECT_DOUBLE_EQ(timeline.max_mem_usage(21, 100), 0.0);
  EXPECT_EQ(timeline.vms(), (std::vector<VmId>{0}));
}

TEST(ServerTimeline, UndoRestoresMergedSegments) {
  ServerTimeline timeline(basic_server(), 100);
  timeline.place(vm(0, 1, 5));
  timeline.place(vm(1, 10, 15));
  // Bridge the two segments, then undo the bridge.
  const VmSpec bridge = vm(2, 4, 12);
  const auto record = timeline.place(bridge);
  EXPECT_EQ(timeline.busy().size(), 1u);
  timeline.undo(record, bridge);
  EXPECT_EQ(timeline.busy().intervals(),
            (std::vector<Interval>{{1, 5}, {10, 15}}));
}

TEST(ServerTimeline, LifoUndoPropertyOnRandomPlacements) {
  Rng rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    ServerTimeline timeline(basic_server(), 200);
    // A couple of permanent residents.
    timeline.place(vm(0, 20, 60, 1.0, 1.0));
    timeline.place(vm(1, 100, 130, 2.0, 2.0));
    const auto busy_before = timeline.busy().intervals();

    // Place a random stack of VMs, then unwind it.
    std::vector<std::pair<ServerTimeline::PlaceRecord, VmSpec>> stack;
    const int pushes = static_cast<int>(rng.uniform_int(1, 6));
    for (int k = 0; k < pushes; ++k) {
      const Time start = static_cast<Time>(rng.uniform_int(1, 180));
      const Time end = static_cast<Time>(
          rng.uniform_int(start, std::min<Time>(200, start + 40)));
      const VmSpec extra = vm(10 + k, start, end, 0.5, 0.5);
      if (!timeline.can_fit(extra)) continue;
      stack.emplace_back(timeline.place(extra), extra);
    }
    while (!stack.empty()) {
      timeline.undo(stack.back().first, stack.back().second);
      stack.pop_back();
    }
    ASSERT_EQ(timeline.busy().intervals(), busy_before) << "trial " << trial;
    ASSERT_DOUBLE_EQ(timeline.max_cpu_usage(1, 19), 0.0);
    ASSERT_DOUBLE_EQ(timeline.max_cpu_usage(61, 99), 0.0);
  }
}

TEST(MakeTimelines, OnePerServer) {
  std::vector<ServerSpec> servers{basic_server(0), basic_server(1)};
  const auto timelines = make_timelines(servers, 42);
  ASSERT_EQ(timelines.size(), 2u);
  EXPECT_EQ(timelines[0].horizon(), 42);
  EXPECT_EQ(timelines[1].spec().id, 1);
}

}  // namespace
}  // namespace esva
