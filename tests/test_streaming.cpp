// Differential harness for the streaming core (core/streaming.h +
// sim/replay.h): replaying a start-time-sorted request stream through a
// PlacementEngine must be *byte-identical* — assignments compared with ==,
// energies with exact EXPECT_EQ — to the batch Allocator::allocate() path,
// for every registered allocator that exposes a streaming policy, with the
// rolling-horizon garbage collection on or off. Also pins the historical
// serial min-incremental loop verbatim as the absolute anchor, the
// advance_to-never-changes-decisions property, the memory bound GC buys, and
// the lazy arrival streams against the materializing generators.

#include "core/streaming.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "cluster/catalog.h"
#include "cluster/timeline.h"
#include "core/allocation.h"
#include "core/cost_model.h"
#include "ext/register.h"
#include "sim/replay.h"
#include "test_util.h"
#include "util/rng.h"
#include "workload/arrival_stream.h"
#include "workload/diurnal.h"
#include "workload/generator.h"

namespace esva {
namespace {

constexpr int kNumVms = 220;
constexpr int kNumServers = 44;

std::vector<ServerSpec> make_fleet(int num_servers) {
  std::vector<ServerSpec> servers;
  const auto& types = all_server_types();
  for (int i = 0; i < num_servers; ++i) {
    const double transition_time = 0.5 + static_cast<double>(i % 3);
    const std::size_t type_index =
        types.size() - 1 - static_cast<std::size_t>(i) % types.size();
    servers.push_back(make_server(types[type_index], i, transition_time));
  }
  return servers;
}

WorkloadConfig workload_config() {
  WorkloadConfig config;
  config.num_vms = kNumVms;
  config.mean_interarrival = 1.5;
  config.mean_duration = 30.0;
  config.vm_types = all_vm_types();
  return config;
}

/// Stable-demand instance (the paper's workload).
ProblemInstance stable_instance(std::uint64_t seed) {
  Rng rng(seed);
  return make_problem(generate_workload(workload_config(), rng),
                      make_fleet(kNumServers));
}

/// Per-time-unit demand profiles (the general R_jt form).
ProblemInstance profiled_instance(std::uint64_t seed) {
  Rng rng(seed);
  return make_problem(
      generate_bursty_workload(workload_config(), /*phases=*/4,
                               /*valley_factor=*/0.45, rng),
      make_fleet(kNumServers));
}

/// Batch reference: the registered allocator's allocate() at default
/// settings (serial scan, no cache).
Allocation batch_run(const std::string& name, const ProblemInstance& problem) {
  AllocatorPtr allocator = make_allocator(name);
  Rng rng(7);
  return allocator->allocate(problem, rng);
}

struct StreamRun {
  Allocation alloc;
  ReplayReport report;
};

/// Streaming replay of the same instance: problem.vms through a
/// VectorArrivalStream (start-time order, the batch presentation order) into
/// the allocator's streaming policy, with matched seed.
StreamRun stream_run(const std::string& name, const ProblemInstance& problem,
                     bool rolling_gc) {
  AllocatorPtr allocator = make_allocator(name);
  std::unique_ptr<PlacementPolicy> policy = allocator->make_policy();
  EXPECT_NE(policy, nullptr) << name;
  Rng rng(7);
  VectorArrivalStream arrivals(problem.vms);
  ReplayOptions options;
  options.rolling_gc = rolling_gc;
  StreamRun run;
  run.report = replay_stream(arrivals, problem.servers, *policy, rng, options);
  // The replay report is indexed by VmId; Allocation by VM position.
  run.alloc.assignment.assign(problem.num_vms(), kNoServer);
  for (std::size_t j = 0; j < problem.num_vms(); ++j) {
    const auto id = static_cast<std::size_t>(problem.vms[j].id);
    if (id < run.report.assignment.size())
      run.alloc.assignment[j] = run.report.assignment[id];
  }
  return run;
}

// --- batch vs stream, every streamable allocator ---------------------------

TEST(StreamingDifferential, ReplayMatchesBatchForEveryStreamableAllocator) {
  register_extension_allocators();
  std::vector<std::string> streamable;
  for (const bool profiled : {false, true}) {
    const ProblemInstance problem =
        profiled ? profiled_instance(11) : stable_instance(11);
    for (const std::string& name : allocator_names()) {
      if (!make_allocator(name)->make_policy()) continue;  // batch-only ext
      if (!profiled) streamable.push_back(name);
      const Allocation batch = batch_run(name, problem);
      const StreamRun stream = stream_run(name, problem, /*rolling_gc=*/true);
      ASSERT_EQ(batch.assignment, stream.alloc.assignment)
          << name << (profiled ? " (profiled)" : " (stable)");
      // Identical assignments must price identically — exact, not near.
      EXPECT_EQ(evaluate_cost(problem, batch).total(),
                evaluate_cost(problem, stream.alloc).total())
          << name;
    }
  }
  // Every place_one-capable allocator must actually expose a policy; a
  // regression to nullptr would silently skip its differential above.
  for (const char* name :
       {"min-incremental", "ffps", "ffps-reshuffle", "ffps-noshuffle",
        "best-fit-cpu", "dot-product-fit", "random-fit",
        "lowest-idle-power"}) {
    EXPECT_NE(std::find(streamable.begin(), streamable.end(), name),
              streamable.end())
        << name << " lost its streaming policy";
  }
}

// --- absolute anchor: the historical serial loop ---------------------------

/// The pre-streaming min-incremental batch loop, verbatim: serial scan over
/// all servers per VM in start-time order, Eq. 17 incremental cost, strict <
/// so ties break to the lowest server id. The refactored allocate() and the
/// streaming replay must both reproduce this exactly.
Allocation historical_min_incremental(const ProblemInstance& problem) {
  std::vector<ServerTimeline> timelines;
  timelines.reserve(problem.num_servers());
  for (const ServerSpec& server : problem.servers)
    timelines.emplace_back(server, problem.horizon);
  Allocation alloc;
  alloc.assignment.assign(problem.num_vms(), kNoServer);
  for (const std::size_t j : ordered_indices(problem, VmOrder::ByStartTime)) {
    const VmSpec& vm = problem.vms[j];
    ServerId best = kNoServer;
    Energy best_cost = 0.0;
    for (std::size_t i = 0; i < timelines.size(); ++i) {
      if (!timelines[i].can_fit(vm)) continue;
      const Energy cost = incremental_cost(timelines[i], vm, CostOptions{});
      if (best == kNoServer || cost < best_cost) {
        best = static_cast<ServerId>(i);
        best_cost = cost;
      }
    }
    if (best == kNoServer) continue;
    timelines[static_cast<std::size_t>(best)].place(vm);
    alloc.assignment[j] = best;
  }
  return alloc;
}

TEST(StreamingDifferential, MinIncrementalAnchoredToHistoricalSerialLoop) {
  for (std::uint64_t seed : {7u, 19u}) {
    for (const bool profiled : {false, true}) {
      const ProblemInstance problem =
          profiled ? profiled_instance(seed) : stable_instance(seed);
      const Allocation anchor = historical_min_incremental(problem);
      const Allocation batch = batch_run("min-incremental", problem);
      ASSERT_EQ(anchor.assignment, batch.assignment)
          << "batch drifted from the historical loop, seed=" << seed;
      const StreamRun stream =
          stream_run("min-incremental", problem, /*rolling_gc=*/true);
      ASSERT_EQ(anchor.assignment, stream.alloc.assignment)
          << "stream drifted from the historical loop, seed=" << seed;
    }
  }
}

// --- advance_to is decision-invariant --------------------------------------

TEST(StreamingProperty, AdvanceToNeverChangesSubsequentDecisions) {
  register_extension_allocators();
  for (const bool profiled : {false, true}) {
    const ProblemInstance problem =
        profiled ? profiled_instance(29) : stable_instance(29);
    for (const std::string& name : allocator_names()) {
      if (!make_allocator(name)->make_policy()) continue;
      const StreamRun with_gc = stream_run(name, problem, /*rolling_gc=*/true);
      const StreamRun no_gc = stream_run(name, problem, /*rolling_gc=*/false);
      ASSERT_EQ(no_gc.alloc.assignment, with_gc.alloc.assignment)
          << name << (profiled ? " (profiled)" : " (stable)");
      // The sentinel rebuild preserves every structure delta bitwise, so the
      // telescoped energies agree exactly.
      EXPECT_EQ(no_gc.report.total_energy, with_gc.report.total_energy)
          << name;
    }
  }
}

TEST(StreamingProperty, TelescopedEnergyMatchesPostHocEvaluation) {
  const ProblemInstance problem = stable_instance(11);
  const StreamRun stream =
      stream_run("min-incremental", problem, /*rolling_gc=*/true);
  const Energy evaluated = evaluate_cost(problem, stream.alloc).total();
  EXPECT_NEAR(stream.report.total_energy, evaluated,
              1e-9 * std::max(1.0, evaluated));
}

// --- the memory bound GC buys ----------------------------------------------

TEST(StreamingProperty, RollingGcBoundsResidentTimelineMemory) {
  const ProblemInstance problem = stable_instance(11);
  const StreamRun with_gc =
      stream_run("min-incremental", problem, /*rolling_gc=*/true);
  const StreamRun no_gc =
      stream_run("min-incremental", problem, /*rolling_gc=*/false);
  // Without GC the resident window only ever grows; with it, retired history
  // is collected, so both the peak and the final footprint shrink.
  EXPECT_LT(with_gc.report.peak_resident_time_units,
            no_gc.report.peak_resident_time_units);
  EXPECT_LT(with_gc.report.final_resident_time_units,
            no_gc.report.final_resident_time_units);
  EXPECT_GT(with_gc.report.final_frontier, 1);
}

// --- advance_to edge cases -------------------------------------------------

TEST(StreamingProperty, AdvanceBackwardsIsANoOp) {
  ClusterState cluster({testing::basic_server(0)}, /*initial_horizon=*/64);
  cluster.place(0, testing::vm(0, 1, 10));
  cluster.advance_to(20);
  EXPECT_EQ(cluster.frontier(), 20);
  EXPECT_EQ(cluster.active_vms(), 0u);
  const std::size_t resident = cluster.resident_time_units();
  cluster.advance_to(5);   // backwards: must change nothing
  cluster.advance_to(20);  // equal: must change nothing
  EXPECT_EQ(cluster.frontier(), 20);
  EXPECT_EQ(cluster.resident_time_units(), resident);
  EXPECT_EQ(cluster.active_vms(), cluster.active_vms_scan());
}

TEST(StreamingProperty, EqualEndVmsRetireTogether) {
  ClusterState cluster({testing::basic_server(0), testing::basic_server(1)},
                       /*initial_horizon=*/64);
  cluster.place(0, testing::vm(0, 1, 10));
  cluster.place(0, testing::vm(1, 3, 10));
  cluster.place(1, testing::vm(2, 2, 10));
  // A VM is busy through its end unit: at t == end nothing retires yet.
  cluster.advance_to(10);
  EXPECT_EQ(cluster.active_vms(), 3u);
  // One tick later, all equal-end VMs go in the same sweep.
  cluster.advance_to(11);
  EXPECT_EQ(cluster.active_vms(), 0u);
  EXPECT_EQ(cluster.active_vms(), cluster.active_vms_scan());
}

TEST(StreamingProperty, EagerRebuildTinyWindowsPreserveDecisions) {
  // Force a rebuild (and thus the retired-busy sentinel path) on *every*
  // advance_to tick, with single-tick advances: the harshest GC schedule
  // must still leave every decision and the telescoped energy bit-identical
  // to the no-GC run.
  const ProblemInstance problem = stable_instance(17);
  const auto run = [&](bool eager) {
    AllocatorPtr allocator = make_allocator("min-incremental");
    std::unique_ptr<PlacementPolicy> policy = allocator->make_policy();
    EXPECT_NE(policy, nullptr);
    Rng rng(7);
    EngineOptions options;
    options.account_energy = true;
    PlacementEngine engine(problem.servers, *policy, rng, options);
    struct Result {
      std::vector<ServerId> decisions;
      Energy energy = 0.0;
    } result;
    engine.set_eager_rebuild(eager);
    for (const std::size_t j :
         ordered_indices(problem, VmOrder::ByStartTime)) {
      const VmSpec& vm = problem.vms[j];
      if (eager) {
        // Single-tick advances: every step retires at most a sliver and
        // forces a full rebuild with the sentinel.
        for (Time t = engine.cluster().frontier(); t <= vm.start; ++t)
          engine.advance_to(t);
      }
      result.decisions.push_back(engine.submit(vm).server);
    }
    result.energy = engine.total_energy();
    return result;
  };
  const auto baseline = run(false);
  const auto stressed = run(true);
  ASSERT_EQ(baseline.decisions, stressed.decisions);
  EXPECT_EQ(baseline.energy, stressed.energy);
}

// --- engine contract -------------------------------------------------------

TEST(StreamingEngine, SubmitBehindFrontierThrows) {
  AllocatorPtr allocator = make_allocator("min-incremental");
  std::unique_ptr<PlacementPolicy> policy = allocator->make_policy();
  ASSERT_NE(policy, nullptr);
  Rng rng(7);
  PlacementEngine engine({testing::basic_server(0)}, *policy, rng);
  EXPECT_NE(engine.submit(testing::vm(0, 10, 20)).server, kNoServer);
  engine.advance_to(30);
  // Start 25 < frontier 30: its window may already be collected.
  EXPECT_THROW(engine.submit(testing::vm(1, 25, 40)), std::invalid_argument);
  // At the frontier is fine.
  EXPECT_NE(engine.submit(testing::vm(2, 30, 40)).server, kNoServer);
}

// --- lazy arrival streams == materializing generators ----------------------

void expect_same_vms(const std::vector<VmSpec>& a,
                     const std::vector<VmSpec>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t j = 0; j < a.size(); ++j) {
    EXPECT_EQ(a[j].id, b[j].id);
    EXPECT_EQ(a[j].type_name, b[j].type_name);
    EXPECT_EQ(a[j].demand, b[j].demand);
    EXPECT_EQ(a[j].start, b[j].start);
    EXPECT_EQ(a[j].end, b[j].end);
  }
}

TEST(ArrivalStreams, PoissonStreamMatchesBatchGenerator) {
  const WorkloadConfig config = workload_config();
  Rng batch_rng(21);
  const std::vector<VmSpec> batch = generate_workload(config, batch_rng);
  Rng stream_rng(21);
  PoissonArrivalStream stream(config, stream_rng);
  expect_same_vms(batch, drain(stream));
}

TEST(ArrivalStreams, DiurnalStreamMatchesBatchGenerator) {
  DiurnalConfig config;
  config.num_vms = 150;
  config.vm_types = all_vm_types();
  Rng batch_rng(33);
  const std::vector<VmSpec> batch = generate_diurnal_workload(config, batch_rng);
  Rng stream_rng(33);
  DiurnalArrivalStream stream(config, stream_rng);
  expect_same_vms(batch, drain(stream));
}

TEST(ArrivalStreams, VectorStreamPresentsBatchOrder) {
  // Ids deliberately out of start order; the stream must yield the batch
  // presentation order — (start, end, id) — regardless of input order.
  std::vector<VmSpec> vms = {testing::vm(0, 9, 12), testing::vm(1, 3, 5),
                             testing::vm(2, 3, 4), testing::vm(3, 3, 4)};
  VectorArrivalStream stream(vms);
  const std::vector<VmSpec> drained = drain(stream);
  ASSERT_EQ(drained.size(), 4u);
  EXPECT_EQ(drained[0].id, 2);  // (3,4,2) before (3,4,3)
  EXPECT_EQ(drained[1].id, 3);
  EXPECT_EQ(drained[2].id, 1);  // (3,5,1)
  EXPECT_EQ(drained[3].id, 0);
  EXPECT_EQ(stream.next(), std::nullopt);  // stays exhausted
}

}  // namespace
}  // namespace esva
