#include "stats/regression.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace esva {
namespace {

TEST(FitLinear, RecoversExactLine) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(3.0 + 2.0 * x);
  const Fit fit = fit_linear(xs, ys);
  ASSERT_TRUE(fit.valid);
  EXPECT_NEAR(fit.a, 3.0, 1e-12);
  EXPECT_NEAR(fit.b, 2.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
  EXPECT_NEAR(fit.adj_r2, 1.0, 1e-12);
}

TEST(FitLinear, NoisyDataHasHighButImperfectR2) {
  Rng rng(3);
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    const double x = static_cast<double>(i);
    xs.push_back(x);
    ys.push_back(1.0 + 0.5 * x + rng.uniform_double(-1, 1));
  }
  const Fit fit = fit_linear(xs, ys);
  ASSERT_TRUE(fit.valid);
  EXPECT_NEAR(fit.b, 0.5, 0.05);
  EXPECT_GT(fit.adj_r2, 0.95);
  EXPECT_LT(fit.adj_r2, 1.0);
}

TEST(FitLinear, InvalidWithFewerThanTwoPoints) {
  EXPECT_FALSE(fit_linear({}, {}).valid);
  EXPECT_FALSE(fit_linear(std::vector<double>{1.0}, std::vector<double>{2.0}).valid);
}

TEST(FitLinear, InvalidWhenAllXIdentical) {
  std::vector<double> xs{2, 2, 2};
  std::vector<double> ys{1, 2, 3};
  EXPECT_FALSE(fit_linear(xs, ys).valid);
}

TEST(FitLinear, AdjustedR2IsBelowR2ForImperfectFits) {
  std::vector<double> xs{1, 2, 3, 4, 5, 6};
  std::vector<double> ys{1.0, 2.2, 2.8, 4.1, 4.9, 6.2};
  const Fit fit = fit_linear(xs, ys);
  ASSERT_TRUE(fit.valid);
  EXPECT_LT(fit.adj_r2, fit.r2);
}

TEST(FitLogarithmic, RecoversExactLogCurve) {
  std::vector<double> xs{0.5, 1, 2, 4, 8, 16};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(0.2 - 0.05 * std::log(x));
  const Fit fit = fit_logarithmic(xs, ys);
  ASSERT_TRUE(fit.valid);
  EXPECT_NEAR(fit.a, 0.2, 1e-12);
  EXPECT_NEAR(fit.b, -0.05, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(FitLogarithmic, RejectsNonPositiveX) {
  std::vector<double> xs{0.0, 1, 2};
  std::vector<double> ys{1, 2, 3};
  EXPECT_FALSE(fit_logarithmic(xs, ys).valid);
}

TEST(FitExponential, RecoversExactExponential) {
  std::vector<double> xs{0, 1, 2, 3, 4};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(2.0 * std::exp(-0.3 * x));
  const Fit fit = fit_exponential(xs, ys);
  ASSERT_TRUE(fit.valid);
  EXPECT_NEAR(fit.a, 2.0, 1e-9);
  EXPECT_NEAR(fit.b, -0.3, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(FitExponential, RejectsNonPositiveY) {
  std::vector<double> xs{1, 2, 3};
  std::vector<double> ys{1.0, -0.5, 2.0};
  EXPECT_FALSE(fit_exponential(xs, ys).valid);
}

TEST(FitPredict, EvaluatesEachModel) {
  Fit linear{.model = FitModel::Linear, .a = 1.0, .b = 2.0, .valid = true};
  EXPECT_DOUBLE_EQ(linear.predict(3.0), 7.0);
  Fit logarithmic{
      .model = FitModel::Logarithmic, .a = 1.0, .b = 2.0, .valid = true};
  EXPECT_DOUBLE_EQ(logarithmic.predict(std::exp(1.0)), 3.0);
  Fit exponential{
      .model = FitModel::Exponential, .a = 2.0, .b = 1.0, .valid = true};
  EXPECT_NEAR(exponential.predict(1.0), 2.0 * std::exp(1.0), 1e-12);
}

TEST(FitBest, PrefersTheGeneratingModel) {
  std::vector<double> xs{1, 2, 4, 8, 16, 32};
  std::vector<double> log_ys;
  for (double x : xs) log_ys.push_back(0.1 + 0.04 * std::log(x));
  EXPECT_EQ(fit_best(xs, log_ys).model, FitModel::Logarithmic);

  std::vector<double> lin_ys;
  for (double x : xs) lin_ys.push_back(0.1 + 0.04 * x);
  EXPECT_EQ(fit_best(xs, lin_ys).model, FitModel::Linear);
}

TEST(FitToString, MentionsAdjR2) {
  std::vector<double> xs{1, 2, 3};
  std::vector<double> ys{2, 4, 6};
  const Fit fit = fit_linear(xs, ys);
  EXPECT_NE(fit.to_string().find("Adj.R2"), std::string::npos);
  Fit invalid;
  invalid.valid = false;
  EXPECT_EQ(invalid.to_string(), "(no fit)");
}

TEST(FitConstantData, R2DefinedAsPerfect) {
  // All y identical and predictions exact: R² = 1 by our convention.
  std::vector<double> xs{1, 2, 3};
  std::vector<double> ys{5, 5, 5};
  const Fit fit = fit_linear(xs, ys);
  ASSERT_TRUE(fit.valid);
  EXPECT_NEAR(fit.b, 0.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

}  // namespace
}  // namespace esva
