#!/usr/bin/env python3
"""Render the bench binaries' --csv exports as matplotlib figures.

Usage:
    # 1. export raw series
    for b in fig2_energy_reduction fig3_utilization fig5_transition_time \
             fig6_mean_length fig7_standard_vms; do
        ./build/bench/$b --csv out/$b.csv
    done
    # 2. plot everything found in out/
    python3 scripts/plot_figures.py out/ --outdir out/plots

The bench CSV layout is: first column = x axis, then one column per series,
with optional `<label>_err` columns (standard error over runs) rendered as
error bars. Matplotlib is optional for the repository; this script is the
only thing that needs it.
"""

import argparse
import csv
import pathlib
import sys


def read_series(path):
    """Returns (x_label, xs, {label: (ys, errs_or_None)})."""
    with open(path, newline="") as fh:
        rows = list(csv.reader(fh))
    if len(rows) < 2:
        raise ValueError(f"{path}: no data rows")
    header = rows[0]
    x_label = header[0]
    xs = [float(r[0]) for r in rows[1:]]
    series = {}
    col = 1
    while col < len(header):
        label = header[col]
        ys = [float(r[col]) for r in rows[1:]]
        errs = None
        if col + 1 < len(header) and header[col + 1] == label + "_err":
            errs = [float(r[col + 1]) for r in rows[1:]]
            col += 1
        series[label] = (ys, errs)
        col += 1
    return x_label, xs, series


def plot_file(path, outdir, plt):
    x_label, xs, series = read_series(path)
    fig, ax = plt.subplots(figsize=(6, 4))
    for label, (ys, errs) in series.items():
        if errs:
            ax.errorbar(xs, ys, yerr=errs, marker="o", capsize=3, label=label)
        else:
            ax.plot(xs, ys, marker="o", label=label)
    ax.set_xlabel(x_label)
    ax.set_ylabel("value")
    ax.set_title(path.stem.replace("_", " "))
    ax.grid(True, alpha=0.3)
    ax.legend()
    out = pathlib.Path(outdir) / (path.stem + ".png")
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    plt.close(fig)
    print(f"wrote {out}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("inputs", nargs="+",
                        help="CSV files or directories containing them")
    parser.add_argument("--outdir", default="plots")
    args = parser.parse_args()

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    pathlib.Path(args.outdir).mkdir(parents=True, exist_ok=True)
    files = []
    for item in args.inputs:
        p = pathlib.Path(item)
        files.extend(sorted(p.glob("*.csv")) if p.is_dir() else [p])
    if not files:
        sys.exit("no CSV inputs found")
    for path in files:
        try:
            plot_file(path, args.outdir, plt)
        except ValueError as e:
            print(f"skipping {path}: {e}", file=sys.stderr)


if __name__ == "__main__":
    main()
