// Fig. 3 — average CPU and memory utilization of servers with 100 VMs, for
// both the heuristic and FFPS, vs mean inter-arrival time. Utilization is
// the nonzero-sample average (paper §IV-C).

#include "bench_util.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace esva;
  const bench::BenchArgs args = bench::parse_bench_args(
      argc, argv, "fig3_utilization — reproduce Fig. 3 (resource utilization)");
  bench::print_banner(
      "Fig. 3 — average CPU / memory utilization (100 VMs)",
      "our algorithm lifts CPU utilization well above FFPS and makes "
      "CPU/memory utilization more even; utilization decreases with "
      "inter-arrival time for both");

  Series ours_cpu;
  ours_cpu.label = "ours CPU";
  Series ours_mem;
  ours_mem.label = "ours memory";
  Series ffps_cpu;
  ffps_cpu.label = "FFPS CPU";
  Series ffps_mem;
  ffps_mem.label = "FFPS memory";

  for (double interarrival : interarrival_sweep()) {
    const Scenario scenario = fig2_scenario(100, interarrival);
    const PointOutcome outcome = run_point(scenario, bench::config_from(args));
    const AllocatorAggregate& ours = outcome.by_name("min-incremental");
    const AllocatorAggregate& ffps = outcome.by_name("ffps");
    for (Series* s : {&ours_cpu, &ours_mem, &ffps_cpu, &ffps_mem})
      s->xs.push_back(interarrival);
    ours_cpu.ys.push_back(ours.cpu_util.mean());
    ours_mem.ys.push_back(ours.mem_util.mean());
    ffps_cpu.ys.push_back(ffps.cpu_util.mean());
    ffps_mem.ys.push_back(ffps.mem_util.mean());
    log_info() << "fig3: ia=" << interarrival << " ours cpu "
               << ours.cpu_util.mean() << " ffps cpu " << ffps.cpu_util.mean();
  }

  FigureSpec spec;
  spec.title = "Fig. 3 — average resource utilization, 100 VMs";
  spec.x_label = "mean inter-arrival time (min)";
  spec.y_label = "utilization";
  spec.y_as_percent = true;
  emit_figure(spec, {ours_cpu, ours_mem, ffps_cpu, ffps_mem}, args.csv);

  // The evenness claim, made explicit.
  double ours_gap = 0.0;
  double ffps_gap = 0.0;
  for (std::size_t k = 0; k < ours_cpu.ys.size(); ++k) {
    ours_gap += std::abs(ours_cpu.ys[k] - ours_mem.ys[k]);
    ffps_gap += std::abs(ffps_cpu.ys[k] - ffps_mem.ys[k]);
  }
  std::printf(
      "mean |CPU - memory| utilization gap: ours %s vs FFPS %s "
      "(paper: ours is more even)\n",
      fmt_percent(ours_gap / static_cast<double>(ours_cpu.ys.size())).c_str(),
      fmt_percent(ffps_gap / static_cast<double>(ffps_cpu.ys.size())).c_str());
  return 0;
}
