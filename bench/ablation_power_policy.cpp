// Ablation A7 — how much is the paper's clairvoyant power-state policy
// worth? Re-prices the same allocations under fixed-timeout policies (the
// realistic controller) and compares against the optimal gap policy. Also
// confirms the heuristic-vs-FFPS ranking is policy-independent.

#include <cstdio>

#include "baselines/registry.h"
#include "bench_util.h"
#include "ext/timeout_policy.h"
#include "sim/metrics.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace esva;
  const bench::BenchArgs args = bench::parse_bench_args(
      argc, argv, "ablation_power_policy — optimal vs fixed-timeout policy");
  bench::print_banner(
      "Ablation A7 — power-state policy",
      "fixed timeouts cost a few percent over the clairvoyant policy; the "
      "min-incremental vs FFPS ranking survives under every timeout");

  const Scenario scenario = fig2_scenario(200, 4.0);
  const std::vector<Time> timeouts{0, 1, 2, 5, 10, 30};

  TextTable table;
  std::vector<std::string> header{"allocator", "optimal policy"};
  for (Time timeout : timeouts)
    header.push_back("timeout " + std::to_string(timeout));
  table.set_header(std::move(header));

  std::map<std::string, double> optimal_mean;
  for (const std::string name : {"min-incremental", "ffps"}) {
    Accumulator optimal;
    std::vector<Accumulator> priced(timeouts.size());
    Rng master(args.seed);
    for (int run = 0; run < args.runs; ++run) {
      Rng run_master = master.split();
      Rng instance_rng = run_master.split();
      const ProblemInstance problem = scenario.instantiate(instance_rng);
      Rng alloc_rng = run_master.split();
      const Allocation alloc =
          make_allocator(name)->allocate(problem, alloc_rng);
      optimal.add(evaluate_cost(problem, alloc).total());
      for (std::size_t k = 0; k < timeouts.size(); ++k)
        priced[k].add(evaluate_cost_with_timeout(problem, alloc,
                                                 {.timeout = timeouts[k]}));
    }
    optimal_mean[name] = optimal.mean();
    std::vector<std::string> row{name, fmt_double(optimal.mean(), 0)};
    for (std::size_t k = 0; k < timeouts.size(); ++k) {
      row.push_back(fmt_double(priced[k].mean(), 0) + " (+" +
                    fmt_percent(priced[k].mean() / optimal.mean() - 1.0) + ")");
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("note: timeout 0 can beat longer timeouts only when gaps are "
              "mostly longer than alpha/P_idle; the optimal policy lower-"
              "bounds every column by construction.\n");
  return 0;
}
