// Ablation A6 — migration as a post-pass (the paper's related-work
// alternative). How much of the heuristic's advantage can a baseline recover
// by migrating afterwards, and does migration still help the heuristic?

#include <cstdio>

#include "baselines/registry.h"
#include "bench_util.h"
#include "ext/migration.h"
#include "sim/metrics.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace esva;
  const bench::BenchArgs args = bench::parse_bench_args(
      argc, argv, "ablation_migration — migration post-pass comparison");
  bench::print_banner(
      "Ablation A6 — migration post-pass",
      "migration narrows but does not close FFPS's gap (moves are paid); "
      "allocation-time optimization remains cheaper than fixing it later");

  const Scenario scenario = fig2_scenario(200, 4.0);

  TextTable table;
  table.set_header({"allocator", "energy before", "moves", "energy after",
                    "net total (incl. moves)", "net reduction"});

  for (const std::string name :
       {"min-incremental", "ffps", "ffps-reshuffle", "random-fit"}) {
    Accumulator before;
    Accumulator after;
    Accumulator net;
    Accumulator overhead;
    Accumulator moves;
    Rng master(args.seed);
    for (int run = 0; run < args.runs; ++run) {
      Rng run_master = master.split();
      Rng instance_rng = run_master.split();
      const ProblemInstance problem = scenario.instantiate(instance_rng);
      Rng alloc_rng = run_master.split();
      const Allocation alloc =
          make_allocator(name)->allocate(problem, alloc_rng);
      const MigrationResult result = optimize_with_migration(problem, alloc);
      before.add(result.energy_before);
      after.add(result.energy_after);
      net.add(result.net_total());
      overhead.add(result.migration_overhead);
      moves.add(static_cast<double>(result.moves));
    }
    table.add_row({name, fmt_double(before.mean(), 0),
                   fmt_double(moves.mean(), 1), fmt_double(after.mean(), 0),
                   fmt_double(net.mean(), 0),
                   fmt_percent((before.mean() - net.mean()) / before.mean())});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("migration penalty: %.0f W*min per GiB moved "
              "(MigrationConfig default).\n",
              MigrationConfig{}.cost_per_gib);
  return 0;
}
