// Ablation A2 — cost-model conventions and greedy decomposition.
//
// Part 1: Eq. 17 as printed omits the first switch-on alpha that the ILP
// objective (Eq. 7) charges. Both conventions are evaluated end-to-end to
// show the choice does not change who wins, only absolute totals.
//
// Part 2: how much of MinIncrementalEnergy's win is temporal consolidation
// vs hardware choice? Compare against baselines that have only one of the
// two signals (best-fit-cpu: consolidation only; lowest-idle-power:
// hardware only; random-fit: neither).

#include <cstdio>

#include "bench_util.h"
#include "sim/metrics.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace esva;
  const bench::BenchArgs args = bench::parse_bench_args(
      argc, argv, "ablation_cost_terms — cost-model and policy decomposition");
  bench::print_banner(
      "Ablation A2 — cost conventions & policy decomposition",
      "initial-transition accounting is a per-used-server constant; the "
      "heuristic needs both its temporal and its hardware signal to win");

  const Scenario scenario = fig2_scenario(200, 4.0);

  for (bool charge_initial : {true, false}) {
    ExperimentConfig config = bench::config_from(args);
    config.cost.charge_initial_transition = charge_initial;
    config.allocator_names = {"min-incremental", "ffps", "best-fit-cpu",
                              "lowest-idle-power", "random-fit"};
    const PointOutcome outcome = run_point(scenario, config);

    std::printf("charge_initial_transition = %s  (%s)\n",
                charge_initial ? "true" : "false",
                charge_initial ? "ILP-consistent, Eq. 7"
                               : "literal Eq. 17");
    TextTable table;
    table.set_header({"allocator", "mean energy (W*min)",
                      "reduction vs FFPS", "servers used"});
    for (const AllocatorAggregate& agg : outcome.allocators) {
      const bool is_baseline = agg.name == outcome.baseline_name;
      table.add_row(
          {agg.name, fmt_double(agg.total_cost.mean(), 0),
           is_baseline ? std::string("—")
                       : fmt_percent(agg.reduction_vs_baseline.mean()),
           fmt_double(agg.servers_used.mean(), 1)});
    }
    std::printf("%s\n", table.render().c_str());
  }

  std::printf(
      "expected reading: min-incremental wins under both conventions;\n"
      "best-fit-cpu (consolidation without energy awareness) and\n"
      "lowest-idle-power (hardware without temporal awareness) each close\n"
      "only part of the gap.\n");
  return 0;
}
