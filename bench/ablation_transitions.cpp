// Ablation A8 — heterogeneous transition times (§IV-B3 says fleet transition
// times "range from 30 s to 3 min"; the figures pin them to single values).
// Compares uniform fleets (0.5 / 1 / 3 min) against a mixed fleet with
// per-server times drawn from U[0.5, 3], and checks whether the heuristic
// exploits the heterogeneity (it should prefer low-alpha servers when
// everything is powered down — §III reason 3).

#include <cstdio>

#include "baselines/registry.h"
#include "bench_util.h"
#include "sim/metrics.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace esva;
  const bench::BenchArgs args = bench::parse_bench_args(
      argc, argv, "ablation_transitions — uniform vs heterogeneous alpha");
  bench::print_banner(
      "Ablation A8 — heterogeneous transition times",
      "a mixed fleet behaves like an intermediate uniform fleet; the "
      "heuristic's advantage persists and it favors low-alpha wake-ups");

  TextTable table;
  table.set_header({"fleet", "reduction vs FFPS", "ours energy",
                    "mean transition energy share"});

  struct Config {
    const char* label;
    Scenario scenario;
  };
  std::vector<Config> configs{
      {"uniform 0.5 min", fig5_scenario(4.0, 0.5)},
      {"uniform 1 min", fig5_scenario(4.0, 1.0)},
      {"uniform 3 min", fig5_scenario(4.0, 3.0)},
      {"mixed U[0.5, 3] min", mixed_transition_scenario(100, 4.0)},
  };
  // Match fleet sizing across rows (mixed_transition_scenario defaults to
  // VMs/2; fig5 uses 50 for 100 VMs — identical here).
  configs.back().scenario.num_servers = 50;

  for (Config& config : configs) {
    ExperimentConfig experiment = bench::config_from(args);
    const PointOutcome outcome = run_point(config.scenario, experiment);

    // Transition share of the heuristic's energy, re-measured directly.
    Accumulator transition_share;
    Rng master(args.seed);
    for (int run = 0; run < args.runs; ++run) {
      Rng run_master = master.split();
      Rng instance_rng = run_master.split();
      const ProblemInstance problem =
          config.scenario.instantiate(instance_rng);
      Rng alloc_rng = run_master.split();
      const Allocation alloc =
          make_allocator("min-incremental")->allocate(problem, alloc_rng);
      const CostReport report = evaluate_cost(problem, alloc);
      transition_share.add(report.breakdown.transition / report.total());
    }

    table.add_row({config.label,
                   fmt_percent(outcome.headline_reduction()),
                   fmt_double(
                       outcome.by_name("min-incremental").total_cost.mean(), 0),
                   fmt_percent(transition_share.mean())});
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
