// Table I — the VM types used by the simulations (reconstructed from the
// 2013 Amazon EC2 instance catalog the paper cites; see DESIGN.md §5).

#include <cstdio>

#include "bench_util.h"
#include "cluster/catalog.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace esva;
  bench::parse_bench_args(argc, argv,
                          "table1_vm_types — print Table I (VM types)");
  bench::print_banner(
      "Table I — THE TYPES OF RESOURCE DEMANDS OF VMs",
      "9 EC2-derived types: 4 standard, 3 memory-intensive, 2 CPU-intensive");

  TextTable table;
  table.set_header({"type", "family", "CPU (compute units)", "memory (GB)"});
  for (const VmType& t : all_vm_types())
    table.add_row({t.name, t.family, fmt_double(t.demand.cpu, 1),
                   fmt_double(t.demand.mem, 2)});
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "surviving OCR anchors: c1.xlarge row reads \"2  7\" in the damaged\n"
      "text (= 20 CU / 7 GB) and the largest standard type has 15 GB.\n");
  return 0;
}
