// Ablation A12 — time-varying demands (the paper's general R_jt): what does
// packing by actual per-minute demand buy over reserving every VM at its
// peak? Generates bursty workloads (piecewise profiles, peak pinned to the
// catalog demand), allocates them twice — once profile-aware, once with the
// profiles stripped (peak reservation) — and compares energy, utilization
// and fleet usage. The run-cost physics are held identical (both variants
// are *billed* by the true profile; only the packing differs).

#include <cstdio>

#include "baselines/registry.h"
#include "bench_util.h"
#include "cluster/datacenter.h"
#include "sim/metrics.h"
#include "util/table.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  using namespace esva;
  const bench::BenchArgs args = bench::parse_bench_args(
      argc, argv, "ablation_profiles — profile-aware vs peak reservation");
  bench::print_banner(
      "Ablation A12 — time-varying demands (R_jt)",
      "profile-aware packing stacks valleys under peaks: fewer active "
      "servers and lower energy than peak reservation, at identical run "
      "cost physics");

  TextTable table;
  table.set_header({"valley factor", "peak-reserved energy",
                    "profile-aware energy", "saving", "servers (peak)",
                    "servers (aware)", "cpu util (aware)"});

  for (double valley : {1.0, 0.6, 0.3, 0.1}) {
    Accumulator peak_energy;
    Accumulator aware_energy;
    Accumulator peak_servers;
    Accumulator aware_servers;
    Accumulator aware_util;

    Rng master(args.seed);
    for (int run = 0; run < args.runs; ++run) {
      Rng run_master = master.split();
      Rng instance_rng = run_master.split();

      WorkloadConfig config;
      config.num_vms = args.quick ? 80 : 200;
      config.mean_interarrival = 1.0;
      config.mean_duration = 50.0;
      config.vm_types = all_vm_types();
      std::vector<VmSpec> profiled =
          generate_bursty_workload(config, 5, valley, instance_rng);
      std::vector<ServerSpec> servers = make_random_fleet(
          config.num_vms / 2, all_server_types(), 1.0, instance_rng);

      // Peak-reserved twin: same VMs, profiles hidden from the allocator.
      std::vector<VmSpec> peak_reserved = profiled;
      for (VmSpec& vm : peak_reserved) vm.profile.clear();

      const ProblemInstance p_aware = make_problem(profiled, servers);
      const ProblemInstance p_peak =
          make_problem(std::move(peak_reserved), servers);

      Rng r1 = run_master.split();
      Rng r2 = r1;  // deterministic allocator; identical stream either way
      const Allocation a_aware =
          make_allocator("min-incremental")->allocate(p_aware, r1);
      const Allocation a_peak =
          make_allocator("min-incremental")->allocate(p_peak, r2);

      // Bill BOTH by the true profile (the peak-reserved twin merely packed
      // more conservatively; physics are the instance with profiles).
      const AllocationMetrics m_aware = compute_metrics(p_aware, a_aware);
      const AllocationMetrics m_peak = compute_metrics(p_aware, a_peak);

      aware_energy.add(m_aware.cost.total());
      peak_energy.add(m_peak.cost.total());
      aware_servers.add(static_cast<double>(m_aware.servers_used));
      peak_servers.add(static_cast<double>(m_peak.servers_used));
      aware_util.add(m_aware.utilization.avg_cpu);
    }

    table.add_row(
        {fmt_double(valley, 1), fmt_double(peak_energy.mean(), 0),
         fmt_double(aware_energy.mean(), 0),
         fmt_percent((peak_energy.mean() - aware_energy.mean()) /
                     peak_energy.mean()),
         fmt_double(peak_servers.mean(), 1),
         fmt_double(aware_servers.mean(), 1),
         fmt_percent(aware_util.mean())});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("valley factor 1.0 = stable demand (sanity row: saving ~0); "
              "smaller = burstier VMs, bigger profile-awareness win.\n");
  return 0;
}
