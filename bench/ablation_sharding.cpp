// Ablation — energy vs shard count. Sharding the fleet (core/shard.h) is a
// layout/parallelism knob, never a quality knob: at every shard count and
// under every partition strategy the scan allocators must produce the *same*
// assignment — and therefore bit-identical Eq. 17 energy — as the unsharded
// serial scan. This ablation makes that visible as data: for shards in
// {1, 4, 16, 64} it reports the total energy (one column, because the values
// are equal), whether the assignment matched byte-for-byte, and the wall
// time per shard count, serial and with the concurrent two-level sweep.
// Exits nonzero on any divergence, so the table doubles as a gate.

#include <cstdio>
#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "cluster/catalog.h"
#include "cluster/datacenter.h"
#include "core/allocation.h"
#include "util/cli.h"
#include "util/table.h"
#include "workload/generator.h"

namespace {

using namespace esva;

double time_ms(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  return n % 2 == 1 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

Allocation run(const ProblemInstance& problem, int shards, ShardBy by,
               int threads) {
  AllocatorPtr allocator = make_allocator("min-incremental");
  ScanConfig scan;
  scan.threads = threads;
  scan.shards = shards;
  scan.shard_by = by;
  allocator->set_scan_config(scan);
  Rng rng(7);
  return allocator->allocate(problem, rng);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace esva;
  CliParser parser(
      "ablation_sharding — energy and wall time vs shard count: identical "
      "assignments (and therefore identical energy) at every shard count, "
      "serial and parallel; exits nonzero on any divergence");
  parser.add_int("servers", 2000, "deterministic round-robin fleet size");
  parser.add_int("vms", 800, "workload size");
  parser.add_int("reps", 3, "timed repetitions per configuration");
  parser.add_string("shard-by", "hash",
                    "partition strategy: contiguous|type|band|hash");
  if (!parser.parse(argc, argv))
    return parser.parse_error() ? 1 : 0;

  ShardBy by = ShardBy::kHash;
  if (!parse_shard_by(parser.get_string("shard-by"), &by)) {
    std::fprintf(stderr, "unknown --shard-by '%s'\n",
                 parser.get_string("shard-by").c_str());
    return 1;
  }
  const int num_servers = static_cast<int>(parser.get_int("servers"));
  const int num_vms = static_cast<int>(parser.get_int("vms"));
  const int reps = std::max(1, static_cast<int>(parser.get_int("reps")));

  WorkloadConfig config;
  config.num_vms = num_vms;
  config.mean_interarrival = 0.5;
  config.mean_duration = 50.0;
  config.vm_types = all_vm_types();
  Rng rng(42);
  const ProblemInstance problem =
      make_problem(generate_workload(config, rng),
                   make_scaled_fleet(num_servers, all_server_types(), 1.0));

  std::printf("Ablation — energy vs shard count (%d servers, %d VMs, "
              "min-incremental, --shard-by %s)\n"
              "expectation: the energy column is constant and every row says "
              "identical — sharding never changes a decision\n\n",
              num_servers, num_vms, to_string(by).c_str());

  const Allocation reference = run(problem, 1, ShardBy::kContiguous, 1);
  const Energy reference_energy = evaluate_cost(problem, reference).total();

  TextTable table;
  table.set_header({"shards", "energy (W*min)", "assignment", "serial ms",
                    "parallel ms (4t)"});
  bool all_identical = true;
  for (const int shards : {1, 4, 16, 64}) {
    Allocation alloc;
    std::vector<double> serial_ms;
    for (int rep = 0; rep < reps; ++rep)
      serial_ms.push_back(time_ms([&] { alloc = run(problem, shards, by, 1); }));
    std::vector<double> parallel_ms;
    Allocation parallel_alloc;
    for (int rep = 0; rep < reps; ++rep)
      parallel_ms.push_back(
          time_ms([&] { parallel_alloc = run(problem, shards, by, 4); }));

    const bool identical = alloc.assignment == reference.assignment &&
                           parallel_alloc.assignment == reference.assignment;
    all_identical = all_identical && identical;
    const Energy energy = evaluate_cost(problem, alloc).total();
    all_identical = all_identical && energy == reference_energy;

    char energy_buf[32], serial_buf[32], parallel_buf[32], shards_buf[16];
    std::snprintf(shards_buf, sizeof(shards_buf), "%d", shards);
    std::snprintf(energy_buf, sizeof(energy_buf), "%.3f", energy);
    std::snprintf(serial_buf, sizeof(serial_buf), "%.2f", median(serial_ms));
    std::snprintf(parallel_buf, sizeof(parallel_buf), "%.2f",
                  median(parallel_ms));
    table.add_row({shards_buf, energy_buf,
                   identical ? "identical" : "DIVERGED", serial_buf,
                   parallel_buf});
  }
  std::printf("%s\n", table.render().c_str());

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: a sharded run diverged from the unsharded "
                 "assignment or energy\n");
    return 1;
  }
  std::printf("all shard counts byte-identical to the unsharded scan "
              "(energy %.3f W*min)\n",
              reference_energy);
  return 0;
}
