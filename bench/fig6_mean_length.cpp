// Fig. 6 — impact of the mean VM duration: reduction ratio vs mean
// inter-arrival time for mean lengths 20 / 50 / 100 minutes, 100 VMs on 50
// servers, transition time 1 min.

#include "bench_util.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace esva;
  const bench::BenchArgs args = bench::parse_bench_args(
      argc, argv,
      "fig6_mean_length — reproduce Fig. 6 (impact of mean VM length)");
  bench::print_banner(
      "Fig. 6 — energy reduction ratio with varying mean VM length",
      "the shorter the mean length, the lighter/more dynamic the load and "
      "the better our algorithm does vs FFPS");

  const std::vector<double> mean_lengths{20.0, 50.0, 100.0};

  std::vector<Series> series;
  for (double mean_length : mean_lengths) {
    Series s;
    s.label = "mean length " + fmt_double(mean_length, 0) + " min";
    for (double interarrival : interarrival_sweep()) {
      const Scenario scenario = fig6_scenario(interarrival, mean_length);
      const PointOutcome outcome =
          run_point(scenario, bench::config_from(args));
      s.xs.push_back(interarrival);
      s.ys.push_back(outcome.headline_reduction());
      log_info() << "fig6: len=" << mean_length << " ia=" << interarrival
                 << " -> " << outcome.headline_reduction();
    }
    series.push_back(std::move(s));
  }

  FigureSpec spec;
  spec.title = "Fig. 6 — reduction ratio vs mean VM length (100 VMs)";
  spec.x_label = "mean inter-arrival time (min)";
  spec.y_label = "energy reduction ratio";
  spec.fit = FitModel::Linear;
  spec.y_as_percent = true;
  emit_figure(spec, series, args.csv);

  double mean_short = 0.0;
  double mean_long = 0.0;
  for (std::size_t k = 0; k < series.front().ys.size(); ++k) {
    mean_short += series.front().ys[k];
    mean_long += series.back().ys[k];
  }
  std::printf("mean reduction: %s at length 20 vs %s at length 100 "
              "(paper: shorter VMs => larger reduction)\n",
              fmt_percent(mean_short / series.front().ys.size()).c_str(),
              fmt_percent(mean_long / series.back().ys.size()).c_str());
  return 0;
}
