// Fig. 8(a,b) — average CPU / memory utilization with 100 standard VMs, on
// (a) all server types and (b) server types 1-3, for both algorithms. The
// paper reports the heuristic lifting both utilizations above ~70% on the
// types-1-3 pool, while FFPS drops to ~30% when big servers are available.

#include "bench_util.h"

namespace {

void run_panel(const esva::bench::BenchArgs& args, bool all_server_types,
               const std::string& panel_name, const std::string& panel_key) {
  using namespace esva;
  Series ours_cpu;
  ours_cpu.label = "ours CPU";
  Series ours_mem;
  ours_mem.label = "ours memory";
  Series ffps_cpu;
  ffps_cpu.label = "FFPS CPU";
  Series ffps_mem;
  ffps_mem.label = "FFPS memory";

  for (double interarrival : interarrival_sweep()) {
    const Scenario scenario =
        fig7_scenario(100, interarrival, all_server_types);
    const PointOutcome outcome = run_point(scenario, bench::config_from(args));
    const AllocatorAggregate& ours = outcome.by_name("min-incremental");
    const AllocatorAggregate& ffps = outcome.by_name("ffps");
    for (Series* s : {&ours_cpu, &ours_mem, &ffps_cpu, &ffps_mem})
      s->xs.push_back(interarrival);
    ours_cpu.ys.push_back(ours.cpu_util.mean());
    ours_mem.ys.push_back(ours.mem_util.mean());
    ffps_cpu.ys.push_back(ffps.cpu_util.mean());
    ffps_mem.ys.push_back(ffps.mem_util.mean());
  }

  FigureSpec spec;
  spec.title = "Fig. 8" + panel_name;
  spec.x_label = "mean inter-arrival time (min)";
  spec.y_label = "utilization";
  spec.y_as_percent = true;
  emit_figure(spec, {ours_cpu, ours_mem, ffps_cpu, ffps_mem},
              args.csv.empty() ? "" : panel_key + "_" + args.csv);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace esva;
  const bench::BenchArgs args = bench::parse_bench_args(
      argc, argv,
      "fig8_standard_utilization — reproduce Fig. 8 (standard-VM utilization)");
  bench::print_banner(
      "Fig. 8 — utilization with 100 standard VMs",
      "(a) all server types: FFPS utilization is dragged down by large "
      "servers; (b) types 1-3: our algorithm pushes both utilizations high "
      "and even");

  run_panel(args, /*all_server_types=*/true, "(a) all server types", "fig8a");
  run_panel(args, /*all_server_types=*/false, "(b) server types 1-3", "fig8b");
  return 0;
}
