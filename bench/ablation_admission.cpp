// Ablation A9 — overload behaviour: the paper assumes capacity suffices;
// this bench shrinks the fleet until it does not and compares plain
// allocation (rejects) with delay-based admission control (queues), tracking
// rejection rate, realized delay and energy.

#include <cstdio>

#include "baselines/registry.h"
#include "bench_util.h"
#include "ext/admission.h"
#include "sim/metrics.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace esva;
  const bench::BenchArgs args = bench::parse_bench_args(
      argc, argv, "ablation_admission — overload: reject vs delay");
  bench::print_banner(
      "Ablation A9 — overload and admission control",
      "shrinking the fleet forces rejections; allowing bounded start delays "
      "admits (nearly) everyone at modest latency cost");

  TextTable table;
  table.set_header({"servers", "plain rejected", "delayed rejected",
                    "mean delay (min)", "p100 delay", "energy (delayed)"});

  for (int fleet_size : {50, 30, 20, 14, 10}) {
    Accumulator plain_rejected;
    Accumulator delayed_rejected;
    Accumulator mean_delay;
    Accumulator max_delay;
    Accumulator energy;

    Scenario scenario = fig2_scenario(100, 1.0);
    scenario.num_servers = fleet_size;

    Rng master(args.seed);
    for (int run = 0; run < args.runs; ++run) {
      Rng run_master = master.split();
      Rng instance_rng = run_master.split();
      const ProblemInstance problem = scenario.instantiate(instance_rng);

      Rng alloc_rng = run_master.split();
      const Allocation plain =
          make_allocator("min-incremental")->allocate(problem, alloc_rng);
      plain_rejected.add(static_cast<double>(plain.num_unallocated()));

      DelayedAdmissionAllocator::Options options;
      options.max_delay = 240;
      const AdmissionResult result =
          DelayedAdmissionAllocator(options).schedule(problem);
      delayed_rejected.add(static_cast<double>(result.rejected()));
      mean_delay.add(result.mean_delay());
      Time worst = 0;
      for (Time d : result.delays) worst = std::max(worst, d);
      max_delay.add(static_cast<double>(worst));

      const ProblemInstance realized =
          make_problem(result.scheduled_vms, problem.servers);
      energy.add(evaluate_cost(realized, result.allocation).total());
    }

    table.add_row({std::to_string(fleet_size),
                   fmt_double(plain_rejected.mean(), 1),
                   fmt_double(delayed_rejected.mean(), 1),
                   fmt_double(mean_delay.mean(), 1),
                   fmt_double(max_delay.mean(), 0),
                   fmt_double(energy.mean(), 0)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("max acceptable delay: 240 min; 'p100 delay' is the mean over "
              "runs of the worst realized delay.\n");
  return 0;
}
