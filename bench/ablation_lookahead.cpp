// Ablation A5 — what does lookahead buy? Sweeps the regret-insertion window
// (1 = the paper's greedy) on Fig. 2-style workloads. A measurable but small
// gain is the expected outcome: it quantifies the greedy's myopia, which the
// paper does not evaluate.

#include <cstdio>

#include "bench_util.h"
#include "ext/register.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace esva;
  const bench::BenchArgs args = bench::parse_bench_args(
      argc, argv, "ablation_lookahead — regret-insertion window sweep");
  bench::print_banner(
      "Ablation A5 — lookahead window",
      "window=1 is the paper's greedy; modest further savings from regret "
      "insertion quantify the greedy's myopia");

  register_extension_allocators();

  TextTable table;
  table.set_header({"inter-arrival (min)", "greedy (w=1)", "w=4", "w=8",
                    "w=16", "best-vs-greedy"});

  for (double interarrival : {1.0, 4.0, 10.0}) {
    const Scenario scenario = fig2_scenario(200, interarrival);
    ExperimentConfig config = bench::config_from(args);
    config.allocator_names = {"lookahead-1", "lookahead-4", "lookahead-8",
                              "lookahead-16", "ffps"};
    const PointOutcome outcome = run_point(scenario, config);

    const double greedy = outcome.by_name("lookahead-1").total_cost.mean();
    double best = greedy;
    std::vector<std::string> row{fmt_double(interarrival, 1),
                                 fmt_double(greedy, 0)};
    for (const char* name : {"lookahead-4", "lookahead-8", "lookahead-16"}) {
      const double cost = outcome.by_name(name).total_cost.mean();
      best = std::min(best, cost);
      row.push_back(fmt_double(cost, 0));
    }
    row.push_back(fmt_percent((greedy - best) / greedy));
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
