// Ablation A4 — the FFPS ambiguity (DESIGN.md §2): "servers are randomly
// sorted" can mean one random probe order per run (our default) or a fresh
// order per VM. The reading changes the baseline's strength and therefore
// the absolute reduction ratios — this bench quantifies both so readers can
// bracket the paper's numbers.

#include <cstdio>

#include "bench_util.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace esva;
  const bench::BenchArgs args = bench::parse_bench_args(
      argc, argv, "ablation_ffps — FFPS server-order ambiguity");
  bench::print_banner(
      "Ablation A4 — FFPS \"randomly sorted\" readings",
      "single-shuffle FFPS consolidates and yields ~10-20% reductions "
      "(the paper's band); per-VM reshuffle spreads VMs and roughly "
      "doubles the measured savings");

  TextTable table;
  table.set_header({"inter-arrival (min)", "reduction vs ffps (1 shuffle)",
                    "reduction vs ffps-reshuffle (per VM)",
                    "ffps util", "ffps-reshuffle util"});

  for (double interarrival : interarrival_sweep()) {
    const Scenario scenario = fig2_scenario(200, interarrival);
    ExperimentConfig config = bench::config_from(args);
    config.allocator_names = {"min-incremental", "ffps", "ffps-reshuffle"};
    const PointOutcome outcome = run_point(scenario, config);

    const double mi = outcome.by_name("min-incremental").total_cost.mean();
    const double reshuffle =
        outcome.by_name("ffps-reshuffle").total_cost.mean();
    table.add_row(
        {fmt_double(interarrival, 1),
         fmt_percent(outcome.headline_reduction()),
         fmt_percent((reshuffle - mi) / reshuffle),
         fmt_percent(outcome.by_name("ffps").cpu_util.mean()),
         fmt_percent(outcome.by_name("ffps-reshuffle").cpu_util.mean())});
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
