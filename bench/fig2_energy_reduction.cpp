// Fig. 2 — energy reduction ratio vs mean inter-arrival time, one series per
// VM count (100..500), servers = VMs/2, all VM and server types, mean VM
// length 50 min, transition time 1 min, 5 random runs per point, linear fits.

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace esva;
  const bench::BenchArgs args = bench::parse_bench_args(
      argc, argv,
      "fig2_energy_reduction — reproduce Fig. 2 (reduction vs inter-arrival)");
  bench::print_banner(
      "Fig. 2 — energy reduction ratio vs mean inter-arrival time",
      "ratio grows ~linearly with inter-arrival time, reaching ~10% at "
      "10 min; similar for 100-500 VMs (scalability)");

  const std::vector<int> counts =
      args.quick ? std::vector<int>{100, 300} : vm_count_sweep();

  std::vector<Series> series;
  for (int num_vms : counts) {
    Series s;
    s.label = std::to_string(num_vms) + " VMs";
    for (double interarrival : interarrival_sweep()) {
      const Scenario scenario = fig2_scenario(num_vms, interarrival);
      const PointOutcome outcome =
          run_point(scenario, bench::config_from(args));
      s.xs.push_back(interarrival);
      s.ys.push_back(outcome.headline_reduction());
      s.errs.push_back(outcome.allocators.front()
                           .reduction_vs_baseline.stderr_mean());
      log_info() << "fig2: " << num_vms << " VMs, ia=" << interarrival
                 << " -> " << outcome.headline_reduction();
    }
    series.push_back(std::move(s));
  }

  FigureSpec spec;
  spec.title = "Fig. 2 — energy reduction ratio (min-incremental vs FFPS)";
  spec.x_label = "mean inter-arrival time (min)";
  spec.y_label = "energy reduction ratio";
  spec.fit = FitModel::Linear;
  spec.y_as_percent = true;
  emit_figure(spec, series, args.csv);
  return 0;
}
