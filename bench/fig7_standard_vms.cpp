// Fig. 7 — allocation of standard VM types (m1.*) on server types 1-3:
// energy reduction ratio vs mean inter-arrival time, one series per VM count,
// logarithm fits. The paper reports up to ~20% savings here.

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace esva;
  const bench::BenchArgs args = bench::parse_bench_args(
      argc, argv,
      "fig7_standard_vms — reproduce Fig. 7 (standard VMs on types 1-3)");
  bench::print_banner(
      "Fig. 7 — standard VMs on server types 1-3",
      "savings up to ~20%, decreasing as inter-arrival time shrinks (load "
      "grows); logarithmic trend");

  const std::vector<int> counts =
      args.quick ? std::vector<int>{100, 300} : vm_count_sweep();

  std::vector<Series> series;
  for (int num_vms : counts) {
    Series s;
    s.label = std::to_string(num_vms) + " VMs";
    for (double interarrival : interarrival_sweep()) {
      const Scenario scenario =
          fig7_scenario(num_vms, interarrival, /*all_server_types=*/false);
      const PointOutcome outcome =
          run_point(scenario, bench::config_from(args));
      s.xs.push_back(interarrival);
      s.ys.push_back(outcome.headline_reduction());
      s.errs.push_back(outcome.allocators.front()
                           .reduction_vs_baseline.stderr_mean());
      log_info() << "fig7: " << num_vms << " VMs, ia=" << interarrival
                 << " -> " << outcome.headline_reduction();
    }
    series.push_back(std::move(s));
  }

  FigureSpec spec;
  spec.title = "Fig. 7 — reduction ratio, standard VMs on server types 1-3";
  spec.x_label = "mean inter-arrival time (min)";
  spec.y_label = "energy reduction ratio";
  spec.fit = FitModel::Logarithmic;
  spec.y_as_percent = true;
  emit_figure(spec, series, args.csv);
  return 0;
}
