// Fig. 5 — impact of the server transition time: reduction ratio vs mean
// inter-arrival time for transition times 0.5 / 1 / 3 minutes, 100 VMs on 50
// servers, mean VM length 50 min. The paper fits the 0.5/1-minute series
// linearly and the 3-minute series exponentially.

#include "bench_util.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace esva;
  const bench::BenchArgs args = bench::parse_bench_args(
      argc, argv,
      "fig5_transition_time — reproduce Fig. 5 (impact of transition time)");
  bench::print_banner(
      "Fig. 5 — energy reduction ratio with varying transition time",
      "the shorter the transition time, the more energy the algorithm saves "
      "by switching servers off during idle segments");

  const std::vector<double> transition_times{0.5, 1.0, 3.0};

  std::vector<Series> series;
  for (double transition_time : transition_times) {
    Series s;
    s.label = "transition " + fmt_double(transition_time, 1) + " min";
    for (double interarrival : interarrival_sweep()) {
      const Scenario scenario = fig5_scenario(interarrival, transition_time);
      const PointOutcome outcome =
          run_point(scenario, bench::config_from(args));
      s.xs.push_back(interarrival);
      s.ys.push_back(outcome.headline_reduction());
      log_info() << "fig5: tt=" << transition_time << " ia=" << interarrival
                 << " -> " << outcome.headline_reduction();
    }
    series.push_back(std::move(s));
  }

  FigureSpec spec;
  spec.title = "Fig. 5 — reduction ratio vs transition time (100 VMs)";
  spec.x_label = "mean inter-arrival time (min)";
  spec.y_label = "energy reduction ratio";
  spec.fit = FitModel::Linear;
  spec.y_as_percent = true;
  emit_figure(spec, series, args.csv);

  // Ordering check the figure encodes: shorter transition => more savings.
  double mean_fast = 0.0;
  double mean_slow = 0.0;
  for (std::size_t k = 0; k < series.front().ys.size(); ++k) {
    mean_fast += series.front().ys[k];
    mean_slow += series.back().ys[k];
  }
  std::printf("mean reduction: %s at 0.5 min vs %s at 3 min (paper: former "
              "is larger)\n",
              fmt_percent(mean_fast / series.front().ys.size()).c_str(),
              fmt_percent(mean_slow / series.back().ys.size()).c_str());
  return 0;
}
