// Instance builders shared by the bench binaries (kept out of the library
// because they encode bench-specific sizing, not paper semantics).

#pragma once

#include "cluster/catalog.h"
#include "core/problem.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace esva::bench {

/// A tiny instance the exact solver can certify: VMs from Table I, servers
/// cycling the catalog from the largest type down (so every VM fits
/// somewhere), short horizon.
inline ProblemInstance tiny_random_problem(Rng& rng, int num_vms,
                                           int num_servers) {
  WorkloadConfig config;
  config.num_vms = num_vms;
  config.mean_interarrival = 2.0;
  config.mean_duration = 6.0;
  config.vm_types = all_vm_types();
  std::vector<VmSpec> vms = generate_workload(config, rng);

  std::vector<ServerSpec> servers;
  const auto& types = all_server_types();
  for (int i = 0; i < num_servers; ++i) {
    const std::size_t type_index =
        types.size() - 1 - static_cast<std::size_t>(i) % types.size();
    servers.push_back(
        make_server(types[type_index], i, 0.5 + static_cast<double>(i % 3)));
  }
  return make_problem(std::move(vms), std::move(servers));
}

}  // namespace esva::bench
