// Forwarding header: the instance builders moved to
// testsupport/instance_builders.h so tests/ and bench/ share one copy.

#pragma once

#include "testsupport/instance_builders.h"

namespace esva::bench {

/// A tiny instance the exact solver can certify (the historical bench sizing:
/// shorter VMs than the test default so branch-and-bound stays tractable).
inline ProblemInstance tiny_random_problem(Rng& rng, int num_vms,
                                           int num_servers) {
  return testsupport::random_problem(rng, num_vms, num_servers,
                                     /*mean_interarrival=*/2.0,
                                     /*mean_duration=*/6.0);
}

}  // namespace esva::bench
