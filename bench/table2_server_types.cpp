// Table II — server types, with the derived quantities the cost model uses
// (P¹, idle fraction, transition cost at the default 1-minute transition).

#include <cstdio>

#include "bench_util.h"
#include "cluster/catalog.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace esva;
  bench::parse_bench_args(argc, argv,
                          "table2_server_types — print Table II (servers)");
  bench::print_banner(
      "Table II — RESOURCE CAPACITIES AND POWER PARAMETERS OF SERVERS",
      "5 types; P_idle/P_peak in 40-50%; power grows with capacity; small "
      "servers most efficient per CU (paper §III)");

  TextTable table;
  table.set_header({"type", "CPU (CU)", "memory (GB)", "P_idle (W)",
                    "P_peak (W)", "P_idle/P_peak", "P1 (W/CU)",
                    "alpha @1min (W*min)"});
  for (const ServerType& t : all_server_types()) {
    const ServerSpec spec = make_server(t, 0, 1.0);
    table.add_row({t.name, fmt_double(t.capacity.cpu, 0),
                   fmt_double(t.capacity.mem, 0), fmt_double(t.p_idle, 0),
                   fmt_double(t.p_peak, 0),
                   fmt_percent(t.p_idle / t.p_peak, 0),
                   fmt_double(spec.unit_run_power(), 2),
                   fmt_double(spec.transition_cost(), 0)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "reconstruction anchors (DESIGN.md 5): the 16 CU type matches the HP\n"
      "ProLiant BL460c G6 blade the paper names; idle power is 40-50%% of\n"
      "peak; watts per compute unit grow with size so that consolidating on\n"
      "small servers (the paper's stated mechanism) actually saves energy.\n");
  return 0;
}
