// P1 — google-benchmark microbenchmarks: allocator throughput at paper scale,
// plus the hot primitives (feasibility probe, incremental cost delta).
// These are the numbers behind the "O(m·n·log T)" complexity claim in
// core/min_incremental.h.

#include <benchmark/benchmark.h>

#include "baselines/registry.h"
#include "cluster/timeline.h"
#include "core/cost_model.h"
#include "sim/metrics.h"
#include "workload/scenarios.h"

namespace {

using namespace esva;

ProblemInstance instance_for(int num_vms, std::uint64_t seed) {
  Rng rng(seed);
  return fig2_scenario(num_vms, 2.0).instantiate(rng);
}

void BM_Allocator(benchmark::State& state, const std::string& name) {
  const ProblemInstance problem =
      instance_for(static_cast<int>(state.range(0)), 42);
  for (auto _ : state) {
    Rng rng(7);
    AllocatorPtr allocator = make_allocator(name);
    Allocation alloc = allocator->allocate(problem, rng);
    benchmark::DoNotOptimize(alloc.assignment.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(problem.num_vms()));
}

void BM_EvaluateCost(benchmark::State& state) {
  const ProblemInstance problem =
      instance_for(static_cast<int>(state.range(0)), 42);
  Rng rng(7);
  const Allocation alloc =
      make_allocator("min-incremental")->allocate(problem, rng);
  for (auto _ : state) {
    CostReport report = evaluate_cost(problem, alloc);
    benchmark::DoNotOptimize(report.breakdown);
  }
}

void BM_Metrics(benchmark::State& state) {
  const ProblemInstance problem =
      instance_for(static_cast<int>(state.range(0)), 42);
  Rng rng(7);
  const Allocation alloc =
      make_allocator("min-incremental")->allocate(problem, rng);
  for (auto _ : state) {
    AllocationMetrics metrics = compute_metrics(problem, alloc);
    benchmark::DoNotOptimize(metrics.utilization);
  }
}

void BM_FeasibilityProbe(benchmark::State& state) {
  const ProblemInstance problem = instance_for(300, 42);
  std::vector<ServerTimeline> timelines =
      make_timelines(problem.servers, problem.horizon);
  // Pre-load half the VMs round-robin so probes hit non-trivial trees.
  for (std::size_t j = 0; j < problem.num_vms() / 2; ++j) {
    auto& timeline = timelines[j % timelines.size()];
    if (timeline.can_fit(problem.vms[j])) timeline.place(problem.vms[j]);
  }
  std::size_t j = problem.num_vms() / 2;
  for (auto _ : state) {
    const VmSpec& vm = problem.vms[j % problem.num_vms()];
    for (const ServerTimeline& timeline : timelines)
      benchmark::DoNotOptimize(timeline.can_fit(vm));
    ++j;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(timelines.size()));
}

void BM_IncrementalCostDelta(benchmark::State& state) {
  const ProblemInstance problem = instance_for(300, 42);
  std::vector<ServerTimeline> timelines =
      make_timelines(problem.servers, problem.horizon);
  for (std::size_t j = 0; j < problem.num_vms() / 2; ++j) {
    auto& timeline = timelines[j % timelines.size()];
    if (timeline.can_fit(problem.vms[j])) timeline.place(problem.vms[j]);
  }
  std::size_t j = problem.num_vms() / 2;
  for (auto _ : state) {
    const VmSpec& vm = problem.vms[j % problem.num_vms()];
    for (const ServerTimeline& timeline : timelines)
      benchmark::DoNotOptimize(incremental_cost(timeline, vm));
    ++j;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(timelines.size()));
}

}  // namespace

BENCHMARK_CAPTURE(BM_Allocator, min_incremental, "min-incremental")
    ->Arg(100)
    ->Arg(500)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Allocator, ffps, "ffps")
    ->Arg(100)
    ->Arg(500)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Allocator, best_fit_cpu, "best-fit-cpu")
    ->Arg(100)
    ->Arg(500)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EvaluateCost)->Arg(100)->Arg(500)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Metrics)->Arg(100)->Arg(500)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FeasibilityProbe);
BENCHMARK(BM_IncrementalCostDelta);

BENCHMARK_MAIN();
