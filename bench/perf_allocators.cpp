// P1/P2 — allocator performance harness with a machine-readable artifact.
//
// Two modes:
//   * default          — measures the paper-scale allocators, checks the
//                        zero-overhead contract of the observability layer
//                        (obs/), measures the candidate-scan engine
//                        (core/candidate_scan.h): serial-vs-parallel speedup
//                        and shape-cache hit rates, and writes
//                        BENCH_perf.json so the perf trajectory accumulates
//                        across PRs. Exits nonzero if allocation with a
//                        *null* TraceSink is more than --overhead-budget
//                        (default 5%) slower than the uninstrumented
//                        reference loop, if any parallel or cached run
//                        diverges from the serial assignment, if the
//                        single-thread min-incremental run is less than
//                        --single-thread-budget (default 2x) faster than the
//                        committed pre-flat-tree baseline medians (enforced
//                        outside --quick whenever a baseline exists for the
//                        scenario size), if the cached fig2 run is slower
//                        than the uncached one beyond a 10% tolerance (the
//                        auto-disable policy's contract), or if the 4-thread
//                        speedup misses --speedup-budget (default 2x; only
//                        enforced on machines with >= 4 hardware threads and
//                        outside --quick — never gated on smaller hosts,
//                        but always labeled in the artifact), or if the SoA
//                        envelope triage sweep is less than
//                        --envelope-budget (default 1.3x) faster than the
//                        AoS quick_fit loop it replaces (enforced outside
//                        --quick; envelope-on vs -off assignments must be
//                        byte-identical always), or if the sharded fleet
//                        scan (core/shard.h) diverges from the unsharded
//                        assignment at any tier (enforced always), or if the
//                        sharded-parallel 100k-server scan is less than
//                        --fleet-speedup-budget (default 1.5x) faster than
//                        the single-shard serial scan (enforced at the
//                        --fleet-full 100k tier on >= 4-thread machines,
//                        full mode), or if the serve daemon's write-ahead
//                        journal (on tmpfs, group commit every 32 records)
//                        costs more than --overhead-budget over the bare
//                        stream replay at fig2@500 (enforced
//                        outside --quick; the journal must round-trip to
//                        the batch assignment and exact total energy
//                        always). Medians from
//                        the previous BENCH_perf.json at the same path are
//                        echoed into an informational "regression" section.
//   * --gbench         — additionally runs the google-benchmark
//                        microbenchmarks (hot primitives: feasibility probe,
//                        incremental cost delta), forwarding --benchmark_*
//                        flags.
//
// The uninstrumented reference is a verbatim copy of the pre-observability
// MinIncrementalAllocator::allocate loop: same timelines, same cost calls, no
// obs hook — the honest "what did instrumentation cost us" baseline.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/registry.h"
#include "cluster/datacenter.h"
#include "cluster/timeline.h"
#include "core/cost_model.h"
#include "core/envelope_store.h"
#include "core/streaming.h"
#include "core/fault_plan.h"
#include "core/min_incremental.h"
#include "obs/energy_ledger.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "serve/journal.h"
#include "sim/metrics.h"
#include "sim/replay.h"
#include "util/cli.h"
#include "workload/arrival_stream.h"
#include "workload/generator.h"
#include "workload/scenarios.h"

namespace {

using namespace esva;

ProblemInstance instance_for(int num_vms, std::uint64_t seed) {
  Rng rng(seed);
  return fig2_scenario(num_vms, 2.0).instantiate(rng);
}

// ---------------------------------------------------------------------------
// google-benchmark microbenchmarks (run with --gbench)
// ---------------------------------------------------------------------------

void BM_Allocator(benchmark::State& state, const std::string& name) {
  const ProblemInstance problem =
      instance_for(static_cast<int>(state.range(0)), 42);
  for (auto _ : state) {
    Rng rng(7);
    AllocatorPtr allocator = make_allocator(name);
    Allocation alloc = allocator->allocate(problem, rng);
    benchmark::DoNotOptimize(alloc.assignment.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(problem.num_vms()));
}

void BM_EvaluateCost(benchmark::State& state) {
  const ProblemInstance problem =
      instance_for(static_cast<int>(state.range(0)), 42);
  Rng rng(7);
  const Allocation alloc =
      make_allocator("min-incremental")->allocate(problem, rng);
  for (auto _ : state) {
    CostReport report = evaluate_cost(problem, alloc);
    benchmark::DoNotOptimize(report.breakdown);
  }
}

void BM_Metrics(benchmark::State& state) {
  const ProblemInstance problem =
      instance_for(static_cast<int>(state.range(0)), 42);
  Rng rng(7);
  const Allocation alloc =
      make_allocator("min-incremental")->allocate(problem, rng);
  for (auto _ : state) {
    AllocationMetrics metrics = compute_metrics(problem, alloc);
    benchmark::DoNotOptimize(metrics.utilization);
  }
}

void BM_FeasibilityProbe(benchmark::State& state) {
  const ProblemInstance problem = instance_for(300, 42);
  std::vector<ServerTimeline> timelines =
      make_timelines(problem.servers, problem.horizon);
  // Pre-load half the VMs round-robin so probes hit non-trivial trees.
  for (std::size_t j = 0; j < problem.num_vms() / 2; ++j) {
    auto& timeline = timelines[j % timelines.size()];
    if (timeline.can_fit(problem.vms[j])) timeline.place(problem.vms[j]);
  }
  std::size_t j = problem.num_vms() / 2;
  for (auto _ : state) {
    const VmSpec& vm = problem.vms[j % problem.num_vms()];
    for (const ServerTimeline& timeline : timelines)
      benchmark::DoNotOptimize(timeline.can_fit(vm));
    ++j;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(timelines.size()));
}

void BM_IncrementalCostDelta(benchmark::State& state) {
  const ProblemInstance problem = instance_for(300, 42);
  std::vector<ServerTimeline> timelines =
      make_timelines(problem.servers, problem.horizon);
  for (std::size_t j = 0; j < problem.num_vms() / 2; ++j) {
    auto& timeline = timelines[j % timelines.size()];
    if (timeline.can_fit(problem.vms[j])) timeline.place(problem.vms[j]);
  }
  std::size_t j = problem.num_vms() / 2;
  for (auto _ : state) {
    const VmSpec& vm = problem.vms[j % problem.num_vms()];
    for (const ServerTimeline& timeline : timelines)
      benchmark::DoNotOptimize(incremental_cost(timeline, vm));
    ++j;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(timelines.size()));
}

// ---------------------------------------------------------------------------
// Overhead guard + BENCH_perf.json
// ---------------------------------------------------------------------------

/// Verbatim copy of MinIncrementalAllocator::allocate as it existed before
/// the observability hook: the reference the null-sink path is held to.
Allocation allocate_uninstrumented(const ProblemInstance& problem) {
  Allocation alloc;
  alloc.assignment.assign(problem.num_vms(), kNoServer);
  std::vector<ServerTimeline> timelines =
      make_timelines(problem.servers, problem.horizon);
  for (std::size_t j : ordered_indices(problem, VmOrder::ByStartTime)) {
    const VmSpec& vm = problem.vms[j];
    ServerId best_server = kNoServer;
    Energy best_delta = kInf;
    for (std::size_t i = 0; i < timelines.size(); ++i) {
      if (!timelines[i].can_fit(vm)) continue;
      const Energy delta = incremental_cost(timelines[i], vm);
      if (delta < best_delta) {
        best_delta = delta;
        best_server = static_cast<ServerId>(i);
      }
    }
    if (best_server == kNoServer) continue;
    timelines[static_cast<std::size_t>(best_server)].place(vm);
    alloc.assignment[j] = best_server;
  }
  return alloc;
}

double time_ms(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  return n % 2 == 1 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

std::string json_array(const std::vector<double>& xs) {
  std::string out = "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", xs[i]);
    out += (i ? std::string(", ") : std::string()) + buf;
  }
  return out + "]";
}

struct OverheadReport {
  int num_vms = 0;
  std::vector<double> uninstrumented_ms;
  std::vector<double> null_sink_ms;
  std::vector<double> traced_ms;
  double overhead = 0.0;  ///< min over reps of null_sink[i]/uninstrumented[i], minus 1
  bool assignments_match = false;
  std::size_t trace_records = 0;
};

OverheadReport measure_overhead(int num_vms, int reps) {
  OverheadReport report;
  report.num_vms = num_vms;
  const ProblemInstance problem = instance_for(num_vms, 42);

  // The guard compares a ~2-5% effect, so it needs more samples than the
  // throughput sections: the best-rep estimator is only as good as the
  // chance that both variants caught a quiet scheduling window. Extra reps
  // are nearly free now that the feasibility kernel shrank each run ~7x.
  reps = std::max(reps, 11);

  Allocation reference;
  Allocation instrumented;
  // Warm-up (touches every timeline allocation path once), then alternate
  // the variants so drift (thermal, frequency scaling) hits both equally.
  (void)allocate_uninstrumented(problem);
  for (int rep = 0; rep < reps; ++rep) {
    report.uninstrumented_ms.push_back(
        time_ms([&] { reference = allocate_uninstrumented(problem); }));
    report.null_sink_ms.push_back(time_ms([&] {
      MinIncrementalAllocator allocator;
      Rng rng(7);
      instrumented = allocator.allocate(problem, rng);
    }));
  }
  report.assignments_match =
      reference.assignment == instrumented.assignment;

  // Informational: the cost of a *live* trace (memory sink + registry).
  MemoryTraceSink sink;
  MetricsRegistry registry;
  for (int rep = 0; rep < std::max(1, reps / 2); ++rep) {
    sink.clear();
    report.traced_ms.push_back(time_ms([&] {
      MinIncrementalAllocator allocator;
      ObsContext obs;
      obs.trace = &sink;
      obs.metrics = &registry;
      allocator.set_observability(obs);
      Rng rng(7);
      Allocation alloc = allocator.allocate(problem, rng);
      benchmark::DoNotOptimize(alloc.assignment.data());
    }));
  }
  report.trace_records = sink.size();

  // Gate on the best *paired* ratio, not min-vs-min across the whole run:
  // timing noise on a shared container is one-sided (interrupts, frequency
  // dips) and drifts on the scale of seconds, so the two variants of the
  // same rep — measured back to back — share a scheduling window while reps
  // minutes of load apart do not. min-vs-min breaks exactly there: if the
  // uninstrumented variant catches one quiet window the null-sink run never
  // matches, the ratio reports load drift as overhead. The per-rep ratio
  // cancels the drift; taking the min over reps then discards the pairs a
  // blip landed in. This matters more now that the feasibility kernel shrank
  // these runs ~7x — a single descheduling blip is a double-digit percentage
  // of the run. Medians and full rep arrays still go in the JSON.
  double best_ratio = kInf;
  for (std::size_t i = 0; i < report.uninstrumented_ms.size(); ++i)
    best_ratio = std::min(
        best_ratio, report.null_sink_ms[i] / report.uninstrumented_ms[i]);
  report.overhead = best_ratio - 1.0;
  return report;
}

struct AllocatorPoint {
  std::string name;
  int num_vms = 0;
  double median_ms = 0.0;
  double vms_per_sec = 0.0;
};

// ---------------------------------------------------------------------------
// Single-thread speedup gate vs the committed pre-optimization baselines
// ---------------------------------------------------------------------------

/// min-incremental fig2 medians (ms) from the BENCH_perf.json committed
/// before the flat-segment-tree / spare-capacity-pruning kernel landed —
/// the denominators of the single-thread speedup gate. Measured on the CI
/// container class; the gate demands a margin (2x) far above machine noise.
struct BaselinePoint {
  int num_vms;
  double median_ms;
};
constexpr BaselinePoint kMinIncrementalBaseline[] = {
    {100, 1.03396}, {500, 61.1332}, {1000, 266.366}};

double baseline_for(int num_vms) {
  for (const BaselinePoint& b : kMinIncrementalBaseline)
    if (b.num_vms == num_vms) return b.median_ms;
  return 0.0;
}

struct SingleThreadGate {
  int num_vms = 0;
  double baseline_ms = 0.0;  ///< 0 when no baseline exists for num_vms
  double measured_ms = 0.0;
  double speedup = 0.0;
  bool enforced = false;
  bool pass = true;
};

SingleThreadGate check_single_thread(const std::vector<AllocatorPoint>& points,
                                     int num_vms, double budget, bool quick) {
  SingleThreadGate gate;
  gate.num_vms = num_vms;
  gate.baseline_ms = baseline_for(num_vms);
  for (const AllocatorPoint& p : points)
    if (p.name == "min-incremental" && p.num_vms == num_vms)
      gate.measured_ms = p.median_ms;
  if (gate.baseline_ms > 0 && gate.measured_ms > 0)
    gate.speedup = gate.baseline_ms / gate.measured_ms;
  gate.enforced = !quick && gate.baseline_ms > 0 && gate.measured_ms > 0;
  gate.pass = !gate.enforced || gate.speedup >= budget;
  std::printf("  single-thread vs committed baseline (n=%d): %.2f ms vs "
              "%.2f ms -> %.2fx (budget %.1fx, %s) %s\n",
              gate.num_vms, gate.measured_ms, gate.baseline_ms, gate.speedup,
              budget,
              gate.enforced ? "enforced" : "not enforced (no baseline or --quick)",
              gate.pass ? "OK" : "FAIL");
  return gate;
}

// ---------------------------------------------------------------------------
// Previous-run medians (regression section)
// ---------------------------------------------------------------------------

/// One allocator data point recovered from the previous BENCH_perf.json.
/// Parsed with a dumb line scanner — the artifact writes each point as a
/// single `{"name": ..., "num_vms": ..., "median_ms": ...}` line and this
/// tool has no JSON reader; anything that doesn't match is skipped.
struct PreviousPoint {
  std::string name;
  int num_vms = 0;
  double median_ms = 0.0;
};

std::vector<PreviousPoint> read_previous_points(const std::string& path) {
  std::vector<PreviousPoint> points;
  std::ifstream in(path);
  if (!in) return points;
  std::string line;
  while (std::getline(in, line)) {
    const std::string name_key = "{\"name\": \"";
    const auto name_pos = line.find(name_key);
    if (name_pos == std::string::npos) continue;
    const auto name_begin = name_pos + name_key.size();
    const auto name_end = line.find('"', name_begin);
    const auto vms_pos = line.find("\"num_vms\": ");
    const auto ms_pos = line.find("\"median_ms\": ");
    if (name_end == std::string::npos || vms_pos == std::string::npos ||
        ms_pos == std::string::npos)
      continue;
    PreviousPoint p;
    p.name = line.substr(name_begin, name_end - name_begin);
    p.num_vms = std::atoi(line.c_str() + vms_pos + 11);
    p.median_ms = std::atof(line.c_str() + ms_pos + 13);
    points.push_back(std::move(p));
  }
  return points;
}

AllocatorPoint measure_allocator(const std::string& name, int num_vms,
                                 int reps) {
  AllocatorPoint point;
  point.name = name;
  point.num_vms = num_vms;
  const ProblemInstance problem = instance_for(num_vms, 42);
  std::vector<double> times;
  for (int rep = 0; rep < reps; ++rep) {
    times.push_back(time_ms([&] {
      Rng rng(7);
      Allocation alloc = make_allocator(name)->allocate(problem, rng);
      benchmark::DoNotOptimize(alloc.assignment.data());
    }));
  }
  point.median_ms = median(times);
  point.vms_per_sec =
      point.median_ms > 0 ? 1000.0 * num_vms / point.median_ms : 0.0;
  return point;
}

// ---------------------------------------------------------------------------
// Candidate-scan engine: serial vs parallel, cache hit rates
// ---------------------------------------------------------------------------

/// fig2 instance with starts/durations quantized to a coarse grid — the
/// shape-repetitive "batch catalog" regime the ScanCache targets. On the raw
/// Poisson workload exact (CPU, MEM, start, end) collisions are rare, which
/// is why the cache is opt-in.
ProblemInstance batch_instance_for(int num_vms, std::uint64_t seed) {
  ProblemInstance problem = instance_for(num_vms, seed);
  for (VmSpec& vm : problem.vms) {
    vm.start = ((vm.start - 1) / 30) * 30 + 1;
    const Time duration = std::max<Time>(30, ((vm.duration() + 29) / 30) * 30);
    vm.end = std::min<Time>(problem.horizon, vm.start + duration - 1);
  }
  return problem;
}

struct TimedRun {
  double median_ms = 0.0;
  double min_ms = 0.0;  ///< best rep — the noise-robust gate estimator
  Allocation alloc;
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::int64_t cache_quick = 0;
  bool cache_auto_disabled = false;
};

TimedRun run_scan_config(const ProblemInstance& problem, int threads,
                         bool cache, int reps) {
  TimedRun result;
  ScanConfig scan;
  scan.threads = threads;
  scan.cache = cache;
  std::vector<double> times;
  for (int rep = 0; rep < reps; ++rep) {
    MetricsRegistry registry;
    times.push_back(time_ms([&] {
      MinIncrementalAllocator allocator;
      allocator.set_scan_config(scan);
      ObsContext obs;
      obs.metrics = &registry;
      allocator.set_observability(obs);
      Rng rng(7);
      result.alloc = allocator.allocate(problem, rng);
      benchmark::DoNotOptimize(result.alloc.assignment.data());
    }));
    result.cache_hits =
        registry.counter("allocator.min-incremental.cache_hits").value();
    result.cache_misses =
        registry.counter("allocator.min-incremental.cache_misses").value();
    result.cache_quick =
        registry.counter("allocator.min-incremental.cache_quick_decided")
            .value();
    result.cache_auto_disabled =
        registry.counter("allocator.min-incremental.cache_auto_disabled")
            .value() > 0;
  }
  result.median_ms = median(times);
  result.min_ms = *std::min_element(times.begin(), times.end());
  return result;
}

struct ParallelScanReport {
  unsigned hardware_threads = 0;
  double serial_ms = 0.0;
  std::vector<std::pair<int, double>> parallel_ms;  ///< (threads, median ms)
  double speedup_at_4 = 0.0;
  bool assignments_match = true;
  double fig2_hit_rate = 0.0;
  double fig2_cached_ms = 0.0;
  bool fig2_cache_auto_disabled = false;
  double batch_hit_rate = 0.0;
  double batch_uncached_ms = 0.0;
  double batch_cached_ms = 0.0;
  bool cache_overhead_enforced = false;
  bool cache_overhead_ok = true;  ///< cached fig2 within 10% of uncached
  bool speedup_enforced = false;
  std::string speedup_unenforced_reason;  ///< empty when enforced
  bool pass = true;
};

double hit_rate(const TimedRun& run) {
  const std::int64_t probes = run.cache_hits + run.cache_misses;
  return probes > 0 ? static_cast<double>(run.cache_hits) /
                          static_cast<double>(probes)
                    : 0.0;
}

ParallelScanReport measure_parallel_scan(int num_vms, int reps,
                                         double speedup_budget, bool quick) {
  ParallelScanReport report;
  report.hardware_threads = std::thread::hardware_concurrency();
  const ProblemInstance problem = instance_for(num_vms, 42);

  std::printf("measuring candidate-scan engine (%d VMs, %u hardware "
              "threads)...\n",
              num_vms, report.hardware_threads);
  const TimedRun serial = run_scan_config(problem, 1, false, reps);
  report.serial_ms = serial.median_ms;
  std::printf("  threads=1       %8.2f ms (median)\n", report.serial_ms);

  for (const int threads : {2, 4}) {
    const TimedRun parallel = run_scan_config(problem, threads, false, reps);
    report.parallel_ms.emplace_back(threads, parallel.median_ms);
    const bool match = parallel.alloc.assignment == serial.alloc.assignment;
    report.assignments_match = report.assignments_match && match;
    const double speedup =
        parallel.median_ms > 0 ? report.serial_ms / parallel.median_ms : 0.0;
    if (threads == 4) report.speedup_at_4 = speedup;
    std::printf("  threads=%-7d %8.2f ms (median)  -> %.2fx  assignments %s\n",
                threads, parallel.median_ms, speedup,
                match ? "identical" : "DIVERGED (BUG)");
  }

  // Cache economics: near-zero hit rate on the raw Poisson workload (shapes
  // almost never collide exactly) vs a real win on the quantized batch
  // catalog. Both must reproduce the serial uncached assignment.
  const TimedRun fig2_cached = run_scan_config(problem, 1, true, reps);
  report.fig2_hit_rate = hit_rate(fig2_cached);
  report.fig2_cached_ms = fig2_cached.median_ms;
  report.fig2_cache_auto_disabled = fig2_cached.cache_auto_disabled;
  report.assignments_match =
      report.assignments_match &&
      fig2_cached.alloc.assignment == serial.alloc.assignment;

  const ProblemInstance batch = batch_instance_for(num_vms, 42);
  const TimedRun batch_uncached = run_scan_config(batch, 1, false, reps);
  const TimedRun batch_cached = run_scan_config(batch, 1, true, reps);
  report.batch_hit_rate = hit_rate(batch_cached);
  report.batch_uncached_ms = batch_uncached.median_ms;
  report.batch_cached_ms = batch_cached.median_ms;
  report.assignments_match =
      report.assignments_match &&
      batch_cached.alloc.assignment == batch_uncached.alloc.assignment;
  std::printf("  cache, fig2:    %8.2f ms, hit rate %5.1f%% (Poisson shapes "
              "rarely repeat), auto-disabled %s\n",
              report.fig2_cached_ms, 100.0 * report.fig2_hit_rate,
              report.fig2_cache_auto_disabled ? "yes" : "no");
  std::printf("  cache, batch:   %8.2f ms vs %.2f ms uncached, hit rate "
              "%5.1f%%\n",
              report.batch_cached_ms, report.batch_uncached_ms,
              100.0 * report.batch_hit_rate);

  // The auto-disable contract: turning the cache on can cost at most the
  // warmup window, after which a useless cache switches itself off. The
  // warmup's memo bookkeeping is a bounded constant (~1 ms for the default
  // 1024 answered probes), not proportional to the run, so the gate is
  // relative tolerance + constant allowance, on best reps (the noise-robust
  // estimator — see measure_overhead).
  constexpr double kWarmupAllowanceMs = 2.0;
  report.cache_overhead_enforced = !quick;
  report.cache_overhead_ok =
      fig2_cached.min_ms <= serial.min_ms * 1.10 + kWarmupAllowanceMs;
  std::printf("  cached fig2 vs uncached: %.2f ms vs %.2f ms best-rep (%s) "
              "%s\n",
              fig2_cached.min_ms, serial.min_ms,
              report.cache_overhead_enforced
                  ? "enforced, 10% + 2 ms warmup allowance"
                  : "not enforced in --quick",
              report.cache_overhead_ok ? "OK" : "FAIL");

  // The speedup budget only means something with real cores to scale onto;
  // on hosts with fewer than 4 hardware threads (and in --quick smoke runs)
  // the number is reported and labeled but never gates the build.
  report.speedup_enforced = !quick && report.hardware_threads >= 4;
  if (!report.speedup_enforced) {
    report.speedup_unenforced_reason =
        quick ? "quick mode"
              : "host has fewer than 4 hardware threads";
  }
  report.pass = report.assignments_match &&
                (!report.speedup_enforced ||
                 report.speedup_at_4 >= speedup_budget) &&
                (!report.cache_overhead_enforced || report.cache_overhead_ok);
  std::printf("  speedup at 4 threads: %.2fx (budget %.1fx, %s%s%s) %s\n",
              report.speedup_at_4, speedup_budget,
              report.speedup_enforced ? "enforced" : "not enforced: ",
              report.speedup_enforced
                  ? ""
                  : report.speedup_unenforced_reason.c_str(),
              "", report.pass ? "OK" : "FAIL");
  return report;
}

// ---------------------------------------------------------------------------
// SoA envelope triage: the packed classify() sweep vs the AoS quick_fit loop
// it replaces, plus end-to-end envelope on/off identity + timing
// ---------------------------------------------------------------------------

struct EnvelopeReport {
  int num_vms = 0;
  std::vector<double> sweep_ms;     ///< per rep: classify() for every VM
  std::vector<double> quickfit_ms;  ///< paired: per-server quick_fit loop
  double triage_speedup = 0.0;      ///< best paired quickfit/sweep ratio
  bool verdicts_match = true;       ///< classify == quick_fit, every probe row
  double on_ms = 0.0;               ///< min-incremental, envelope on (median)
  double off_ms = 0.0;              ///< min-incremental, envelope off (median)
  double end_to_end_ratio = 0.0;    ///< best paired off/on ratio
  double lip_on_ms = 0.0;           ///< lowest-idle-power, envelope on
  double lip_off_ms = 0.0;          ///< lowest-idle-power, envelope off
  double lip_ratio = 0.0;           ///< best paired off/on ratio
  bool assignments_match = true;    ///< on vs off, both allocators — enforced
  bool triage_enforced = false;     ///< outside --quick
  double triage_budget = 0.0;
  bool pass = true;
};

/// The envelope gate. The enforced number is the *triage* comparison: sweep
/// the packed envelope rows (EnvelopeStore::classify) vs calling
/// ServerTimeline::quick_fit per server — the exact loop the envelope pass
/// replaces — over every fig2 VM against the fully loaded fleet. That ratio
/// is what the SoA layout buys and holds far above the budget (~4-5x: one
/// contiguous vectorized sweep vs 500 pointer-chasing envelope reads).
/// End-to-end allocator on/off ratios are reported alongside but not gated
/// on a floor: in a full allocation the scan's scoring stage (Eq. 17 deltas)
/// dominates once triage is cheap, so the whole-run ratio measures Amdahl's
/// remainder, not the triage win (docs/PERFORMANCE.md) — for those, the
/// enforced contract is byte-identical assignments.
EnvelopeReport measure_envelope(int num_vms, int reps, double triage_budget,
                                bool quick) {
  EnvelopeReport report;
  report.num_vms = num_vms;
  report.triage_budget = triage_budget;
  const ProblemInstance problem = instance_for(num_vms, 42);

  std::printf("measuring SoA envelope triage (%d VMs x %zu servers)...\n",
              num_vms, problem.servers.size());

  // A loaded fleet: replay the min-incremental assignment so the envelopes
  // carry realistic peaks/floors, not empty-timeline trivia.
  Rng seed_rng(7);
  const Allocation loaded =
      make_allocator("min-incremental")->allocate(problem, seed_rng);
  ClusterState cluster(problem.servers, problem.horizon);
  for (const std::size_t j : ordered_indices(problem, VmOrder::ByStartTime)) {
    if (loaded.assignment[j] == kNoServer) continue;
    cluster.place(static_cast<std::size_t>(loaded.assignment[j]),
                  problem.vms[j]);
  }

  const std::size_t n = cluster.num_servers();
  std::vector<std::uint8_t> sweep_verdicts(n);
  std::vector<std::uint8_t> loop_verdicts(n);
  for (int rep = 0; rep < reps; ++rep) {
    report.sweep_ms.push_back(time_ms([&] {
      for (const VmSpec& vm : problem.vms) {
        cluster.envelopes().classify(EnvelopeStore::probe_of(vm),
                                     sweep_verdicts.data());
        benchmark::DoNotOptimize(sweep_verdicts.data());
      }
    }));
    report.quickfit_ms.push_back(time_ms([&] {
      const std::vector<ServerTimeline>& timelines = cluster.timelines();
      for (const VmSpec& vm : problem.vms) {
        for (std::size_t i = 0; i < n; ++i)
          loop_verdicts[i] =
              static_cast<std::uint8_t>(timelines[i].quick_fit(vm));
        benchmark::DoNotOptimize(loop_verdicts.data());
      }
    }));
  }
  // Paired best ratio (see measure_overhead: the two variants of one rep
  // share a scheduling window; reps apart do not).
  double best_ratio = 0.0;
  for (std::size_t i = 0; i < report.sweep_ms.size(); ++i)
    best_ratio =
        std::max(best_ratio, report.quickfit_ms[i] / report.sweep_ms[i]);
  report.triage_speedup = best_ratio;

  for (const VmSpec& vm : problem.vms) {
    cluster.envelopes().classify(EnvelopeStore::probe_of(vm),
                                 sweep_verdicts.data());
    for (std::size_t i = 0; i < n; ++i) {
      if (sweep_verdicts[i] !=
          static_cast<std::uint8_t>(cluster.timelines()[i].quick_fit(vm)))
        report.verdicts_match = false;
    }
  }
  std::printf("  triage sweep:   %8.3f ms vs %.3f ms quick_fit loop "
              "(medians) -> %.2fx best paired, verdicts %s\n",
              median(report.sweep_ms), median(report.quickfit_ms),
              report.triage_speedup,
              report.verdicts_match ? "bit-identical" : "DIVERGED (BUG)");

  // End-to-end: the same allocation with the envelope pass on vs off.
  const auto timed_alloc = [&](const std::string& name, bool envelope,
                               std::vector<double>& times) {
    Allocation alloc;
    for (int rep = 0; rep < reps; ++rep) {
      times.push_back(time_ms([&] {
        AllocatorPtr allocator = make_allocator(name);
        ScanConfig scan;
        scan.envelope = envelope;
        allocator->set_scan_config(scan);
        Rng rng(7);
        alloc = allocator->allocate(problem, rng);
        benchmark::DoNotOptimize(alloc.assignment.data());
      }));
    }
    return alloc;
  };
  const auto paired_best = [](const std::vector<double>& off,
                              const std::vector<double>& on) {
    double best = 0.0;
    for (std::size_t i = 0; i < off.size() && i < on.size(); ++i)
      best = std::max(best, off[i] / on[i]);
    return best;
  };
  std::vector<double> on_times, off_times;
  const Allocation mi_on = timed_alloc("min-incremental", true, on_times);
  const Allocation mi_off = timed_alloc("min-incremental", false, off_times);
  report.on_ms = median(on_times);
  report.off_ms = median(off_times);
  report.end_to_end_ratio = paired_best(off_times, on_times);
  report.assignments_match = mi_on.assignment == mi_off.assignment;

  std::vector<double> lip_on_times, lip_off_times;
  const Allocation lip_on =
      timed_alloc("lowest-idle-power", true, lip_on_times);
  const Allocation lip_off =
      timed_alloc("lowest-idle-power", false, lip_off_times);
  report.lip_on_ms = median(lip_on_times);
  report.lip_off_ms = median(lip_off_times);
  report.lip_ratio = paired_best(lip_off_times, lip_on_times);
  report.assignments_match =
      report.assignments_match && lip_on.assignment == lip_off.assignment;

  std::printf("  min-incremental: %8.2f ms on vs %.2f ms off (%.2fx, "
              "score-bound — informational)\n",
              report.on_ms, report.off_ms, report.end_to_end_ratio);
  std::printf("  lowest-idle-power: %6.2f ms on vs %.2f ms off (%.2fx, "
              "triage-bound — informational)\n",
              report.lip_on_ms, report.lip_off_ms, report.lip_ratio);

  report.triage_enforced = !quick;
  report.pass = report.verdicts_match && report.assignments_match &&
                (!report.triage_enforced ||
                 report.triage_speedup >= triage_budget);
  std::printf("  triage speedup %.2fx (budget %.1fx, %s), assignments "
              "on==off %s -> %s\n",
              report.triage_speedup, triage_budget,
              report.triage_enforced ? "enforced" : "not enforced in --quick",
              report.assignments_match ? "identical" : "DIVERGED (BUG)",
              report.pass ? "OK" : "FAIL");
  return report;
}

// ---------------------------------------------------------------------------
// Streaming engine: request throughput, submit latency, GC memory bound
// ---------------------------------------------------------------------------

struct StreamingVariant {
  double median_ms = 0.0;
  double requests_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::size_t peak_resident_time_units = 0;
  bool matches_batch = false;
};

struct StreamingReport {
  int num_vms = 0;
  StreamingVariant gc;
  StreamingVariant no_gc;
  bool pass = true;
};

StreamingVariant run_streaming(const ProblemInstance& problem,
                               const Allocation& batch, bool rolling_gc,
                               int reps) {
  StreamingVariant variant;
  std::vector<double> times;
  ReplayReport report;
  for (int rep = 0; rep < reps; ++rep) {
    times.push_back(time_ms([&] {
      AllocatorPtr allocator = make_allocator("min-incremental");
      std::unique_ptr<PlacementPolicy> policy = allocator->make_policy();
      Rng rng(7);
      VectorArrivalStream arrivals(problem.vms);
      ReplayOptions options;
      options.rolling_gc = rolling_gc;
      report = replay_stream(arrivals, problem.servers, *policy, rng, options);
      benchmark::DoNotOptimize(report.assignment.data());
    }));
  }
  variant.median_ms = median(times);
  variant.requests_per_sec = report.requests_per_sec;
  variant.p50_ms = report.latency.p50_ms;
  variant.p99_ms = report.latency.p99_ms;
  variant.peak_resident_time_units = report.peak_resident_time_units;

  Allocation streamed;
  streamed.assignment.assign(problem.num_vms(), kNoServer);
  for (std::size_t j = 0; j < problem.num_vms(); ++j) {
    const auto id = static_cast<std::size_t>(problem.vms[j].id);
    if (id < report.assignment.size())
      streamed.assignment[j] = report.assignment[id];
  }
  variant.matches_batch = streamed.assignment == batch.assignment;
  return variant;
}

StreamingReport measure_streaming(int num_vms, int reps) {
  StreamingReport report;
  report.num_vms = num_vms;
  const ProblemInstance problem = instance_for(num_vms, 42);
  Rng rng(7);
  const Allocation batch =
      make_allocator("min-incremental")->allocate(problem, rng);

  std::printf("measuring streaming engine (%d VMs, min-incremental)...\n",
              num_vms);
  report.gc = run_streaming(problem, batch, /*rolling_gc=*/true, reps);
  report.no_gc = run_streaming(problem, batch, /*rolling_gc=*/false, reps);
  report.pass = report.gc.matches_batch && report.no_gc.matches_batch;
  for (const auto& [label, v] :
       {std::pair<const char*, const StreamingVariant&>{"gc on ", report.gc},
        {"gc off", report.no_gc}}) {
    std::printf("  %s: %8.2f ms, %9.0f req/s, p50 %.4f ms, p99 %.4f ms, "
                "peak resident %zu units, batch match %s\n",
                label, v.median_ms, v.requests_per_sec, v.p50_ms, v.p99_ms,
                v.peak_resident_time_units,
                v.matches_batch ? "yes" : "NO (BUG)");
  }
  std::printf("  GC memory: %zu / %zu peak resident units (%.1f%%)\n",
              report.gc.peak_resident_time_units,
              report.no_gc.peak_resident_time_units,
              report.no_gc.peak_resident_time_units > 0
                  ? 100.0 *
                        static_cast<double>(report.gc.peak_resident_time_units) /
                        static_cast<double>(
                            report.no_gc.peak_resident_time_units)
                  : 0.0);
  return report;
}

// ---------------------------------------------------------------------------
// Telemetry gate: full collector stack vs the bare replay
// ---------------------------------------------------------------------------

struct TelemetryReport {
  int num_vms = 0;
  std::vector<double> plain_ms;
  std::vector<double> telemetry_ms;
  double overhead = 0.0;  ///< best paired ratio minus 1 (see measure_overhead)
  bool assignments_match = false;  ///< always enforced
  bool conserves = false;          ///< always enforced, 1e-6 relative
  double ledger_total = 0.0;
  double engine_total = 0.0;
  std::size_t samples = 0;
  std::size_t ledger_entries = 0;
  bool overhead_enforced = false;
  bool pass = true;
};

/// fig2@num_vms replay, bare vs with the full telemetry stack bound: metrics
/// registry (histogram-backed submit timer), per-tick time-series sampler,
/// energy ledger. Gates: assignments byte-identical and ledger conservation
/// always; the overhead budget outside --quick. Same paired-best-ratio
/// estimator as the null-sink guard — the two variants of one rep share a
/// scheduling window, reps minutes apart do not.
TelemetryReport measure_telemetry(int num_vms, int reps, double budget,
                                  bool quick) {
  TelemetryReport report;
  report.num_vms = num_vms;
  const ProblemInstance problem = instance_for(num_vms, 42);
  reps = std::max(reps, 7);

  const auto run = [&](bool telemetry, ReplayReport& out_report,
                       EnergyLedger* ledger, std::size_t* samples) {
    AllocatorPtr allocator = make_allocator("min-incremental");
    std::unique_ptr<PlacementPolicy> policy = allocator->make_policy();
    Rng rng(7);
    VectorArrivalStream arrivals(problem.vms);
    MetricsRegistry metrics;
    TimeSeriesOptions ts_options;
    ts_options.every = 1;
    ts_options.capacity = 0;
    TimeSeriesSampler sampler(ts_options);
    ReplayOptions options;
    if (telemetry) {
      options.obs.metrics = &metrics;
      options.timeseries = &sampler;
      options.ledger = ledger;
    }
    out_report = replay_stream(arrivals, problem.servers, *policy, rng,
                               options);
    if (samples) *samples = sampler.size();
    benchmark::DoNotOptimize(out_report.assignment.data());
  };

  ReplayReport plain;
  ReplayReport full;
  EnergyLedger ledger;
  // Warm-up, then alternate so drift hits both variants equally.
  run(false, plain, nullptr, nullptr);
  for (int rep = 0; rep < reps; ++rep) {
    report.plain_ms.push_back(
        time_ms([&] { run(false, plain, nullptr, nullptr); }));
    ledger.clear();
    report.telemetry_ms.push_back(time_ms(
        [&] { run(true, full, &ledger, &report.samples); }));
  }
  report.ledger_entries = ledger.size();
  report.assignments_match = plain.assignment == full.assignment &&
                             plain.total_energy == full.total_energy;
  report.ledger_total = ledger.total();
  report.engine_total = full.total_energy;
  report.conserves = ledger.conserves(full.total_energy);

  double best_ratio = kInf;
  for (std::size_t i = 0; i < report.plain_ms.size(); ++i)
    best_ratio =
        std::min(best_ratio, report.telemetry_ms[i] / report.plain_ms[i]);
  report.overhead = best_ratio - 1.0;
  report.overhead_enforced = !quick;
  report.pass = report.assignments_match && report.conserves &&
                (!report.overhead_enforced || report.overhead <= budget);

  std::printf("measuring telemetry stack (%d VMs, sampler every tick + "
              "histogram + ledger)...\n",
              num_vms);
  std::printf("  bare replay:    %8.2f ms (median)\n",
              median(report.plain_ms));
  std::printf("  full telemetry: %8.2f ms (median)  -> overhead %+.2f%% "
              "(best paired ratio, budget %.0f%%, %s) %s\n",
              median(report.telemetry_ms), 100.0 * report.overhead,
              100.0 * budget,
              report.overhead_enforced ? "enforced" : "not enforced (--quick)",
              !report.overhead_enforced || report.overhead <= budget
                  ? "OK"
                  : "FAIL");
  std::printf("  %zu samples, %zu ledger entries\n", report.samples,
              report.ledger_entries);
  std::printf("  assignments identical: %s   ledger conserves energy: %s "
              "(%.6f vs %.6f W*min)\n",
              report.assignments_match ? "yes" : "NO (BUG)",
              report.conserves ? "yes" : "NO (BUG)", report.ledger_total,
              report.engine_total);
  return report;
}

// ---------------------------------------------------------------------------
// WAL gate: journaled engine submit loop vs the bare stream replay
// ---------------------------------------------------------------------------

struct WalReport {
  int num_vms = 0;
  std::string journal_dir;
  bool tmpfs = false;  ///< journal landed on /dev/shm (vs TMPDIR fallback)
  int sync_every = 32;  ///< group-commit batch (the daemon's --wal-sync-every)
  std::vector<double> stream_ms;
  std::vector<double> wal_ms;
  double overhead = 0.0;  ///< best paired ratio minus 1 (see measure_overhead)
  /// Journal read back through decisions_from_wal + assignment_from_trace
  /// equals the batch replay's assignment; always enforced.
  bool assignments_match = false;
  bool energy_match = false;  ///< exact-double total energy; always enforced
  std::size_t journal_records = 0;
  std::size_t journal_bytes = 0;
  bool overhead_enforced = false;
  bool pass = true;
};

/// The serve daemon's durability cost at the fig2@num_vms acceptance point:
/// the same arrival stream run through a PlacementEngine submit loop that
/// journals every accepted placement (encode_place_record + WalWriter group
/// commit at sync_every=32 — the fsync-batched configuration; sync_every=1,
/// the daemon's conservative default, pays two syscalls per ack and buys
/// per-record durability instead of throughput) against the bare
/// `esva stream` replay. The journal lands on tmpfs (/dev/shm, falling back
/// to TMPDIR) so the gate measures the WAL code path — encode, batch
/// write, fsync — not a spinning disk. Identity gates always: the journal
/// must round-trip through the real trace loader to the replay's
/// assignment, and the journaled run's total energy must equal the
/// replay's exactly. The <= budget overhead gate enforces outside --quick,
/// with the same paired-best-ratio estimator as the telemetry guard.
WalReport measure_wal(int num_vms, int reps, double budget, bool quick) {
  WalReport report;
  report.num_vms = num_vms;
  const ProblemInstance problem = instance_for(num_vms, 42);
  const std::vector<std::size_t> order = order_by_start(problem.vms);
  reps = std::max(reps, 13);

  report.tmpfs = ::access("/dev/shm", W_OK) == 0;
  if (report.tmpfs) {
    report.journal_dir = "/dev/shm";
  } else {
    const char* tmpdir = std::getenv("TMPDIR");
    report.journal_dir = tmpdir && *tmpdir ? tmpdir : "/tmp";
  }
  const std::string journal_path = report.journal_dir + "/esva-bench-" +
                                   std::to_string(::getpid()) + ".wal";

  const auto run_stream = [&](ReplayReport& out_report) {
    AllocatorPtr allocator = make_allocator("min-incremental");
    std::unique_ptr<PlacementPolicy> policy = allocator->make_policy();
    Rng rng(7);
    VectorArrivalStream arrivals(problem.vms);
    out_report = replay_stream(arrivals, problem.servers, *policy, rng,
                               ReplayOptions{});
    benchmark::DoNotOptimize(out_report.assignment.data());
  };

  // The daemon's submit path minus the socket/JSON wire: place in arrival
  // order, journal each decision after the engine applied it, fsync per the
  // batch policy, drain. EngineOptions mirror serve::Daemon (and thus
  // replay_stream) exactly.
  const auto run_wal = [&](Energy* out_energy) {
    ::unlink(journal_path.c_str());
    AllocatorPtr allocator = make_allocator("min-incremental");
    std::unique_ptr<PlacementPolicy> policy = allocator->make_policy();
    Rng rng(7);
    EngineOptions eopts;
    eopts.initial_horizon = 0;
    eopts.auto_advance = true;
    eopts.account_energy = true;
    eopts.tolerate_late_arrivals = true;
    PlacementEngine engine(problem.servers, *policy, rng, eopts);
    serve::WalHeader header;
    header.allocator = "min-incremental";
    header.seed = 7;
    header.num_servers = problem.num_servers();
    serve::WalWriter wal(journal_path, header, report.sync_every);
    std::uint64_t seq = 1;
    for (const std::size_t j : order) {
      const VmSpec& vm = problem.vms[j];
      const PlacementDecision decision = engine.submit(vm);
      wal.append(serve::encode_place_record(seq++, "min-incremental", vm,
                                            decision,
                                            engine.total_energy()));
    }
    engine.finish_stream();
    wal.sync();
    if (out_energy) *out_energy = engine.total_energy();
  };

  ReplayReport stream;
  Energy wal_energy = 0.0;
  // Warm-up, then pair the variants per rep, alternating which goes first:
  // within-pair drift (frequency step, background load arriving mid-rep)
  // then penalizes each variant on half the pairs instead of always the
  // journaled one, and the best-ratio estimator picks the cleanest pair.
  run_stream(stream);
  run_wal(&wal_energy);
  for (int rep = 0; rep < reps; ++rep) {
    if (rep % 2 == 0) {
      report.stream_ms.push_back(time_ms([&] { run_stream(stream); }));
      report.wal_ms.push_back(time_ms([&] { run_wal(&wal_energy); }));
    } else {
      report.wal_ms.push_back(time_ms([&] { run_wal(&wal_energy); }));
      report.stream_ms.push_back(time_ms([&] { run_stream(stream); }));
    }
  }

  // Round-trip the surviving journal through the real trace loader: the WAL
  // is a decision trace, so last-write-wins folding must reproduce the batch
  // replay's assignment (retries are off here, so submit decisions are
  // final).
  const serve::WalFile journal = serve::read_wal(journal_path);
  report.journal_records = journal.records.size();
  {
    std::ifstream in(journal_path, std::ios::binary | std::ios::ate);
    if (in) report.journal_bytes = static_cast<std::size_t>(in.tellg());
  }
  const std::vector<ServerId> replayed = assignment_from_trace(
      decisions_from_wal(journal.records), problem.vms.size());
  report.assignments_match = replayed == stream.assignment;
  report.energy_match = wal_energy == stream.total_energy;
  ::unlink(journal_path.c_str());

  double best_ratio = kInf;
  for (std::size_t i = 0; i < report.stream_ms.size(); ++i)
    best_ratio = std::min(best_ratio, report.wal_ms[i] / report.stream_ms[i]);
  report.overhead = best_ratio - 1.0;
  report.overhead_enforced = !quick;
  report.pass = report.assignments_match && report.energy_match &&
                (!report.overhead_enforced || report.overhead <= budget);

  std::printf("measuring WAL durability cost (%d VMs, journal on %s, fsync "
              "every %d)...\n",
              num_vms, report.journal_dir.c_str(), report.sync_every);
  std::printf("  bare stream:     %8.2f ms (median)\n",
              median(report.stream_ms));
  std::printf("  journaled:       %8.2f ms (median)  -> overhead %+.2f%% "
              "(best paired ratio, budget %.0f%%, %s) %s\n",
              median(report.wal_ms), 100.0 * report.overhead, 100.0 * budget,
              report.overhead_enforced ? "enforced" : "not enforced (--quick)",
              !report.overhead_enforced || report.overhead <= budget
                  ? "OK"
                  : "FAIL");
  std::printf("  %zu journal records, %zu bytes\n", report.journal_records,
              report.journal_bytes);
  std::printf("  journal replays to batch assignment: %s   energy exact: "
              "%s\n",
              report.assignments_match ? "yes" : "NO (BUG)",
              report.energy_match ? "yes" : "NO (BUG)");
  return report;
}

// ---------------------------------------------------------------------------
// Chaos: streaming under a seeded fault plan with the retry queue enabled
// ---------------------------------------------------------------------------

struct ChaosReport {
  int num_vms = 0;
  int failures = 0;
  double median_ms = 0.0;
  FaultStats stats;
  std::size_t placed = 0;
  std::size_t rejected = 0;
  Energy total_energy = 0.0;
  bool reproducible = false;  ///< two seeded runs byte-identical
  bool pass = true;
};

ChaosReport measure_chaos(int num_vms, int reps) {
  ChaosReport report;
  report.num_vms = num_vms;
  const ProblemInstance problem = instance_for(num_vms, 42);
  // min-incremental packs onto low-id servers, so uniform failures need to
  // cover a decent fraction of the fleet before evacuation actually triggers.
  report.failures =
      std::max(4, static_cast<int>(problem.num_servers()) / 3);

  ChaosConfig chaos;
  chaos.num_servers = problem.num_servers();
  chaos.failures = report.failures;
  chaos.window_lo = 5;
  chaos.window_hi = std::max<Time>(10, problem.horizon / 2);
  chaos.mean_repair = std::max<Time>(10, problem.horizon / 10);
  Rng plan_rng(42);
  const FaultPlan plan = random_fault_plan(chaos, plan_rng);

  const auto run = [&] {
    AllocatorPtr allocator = make_allocator("min-incremental");
    std::unique_ptr<PlacementPolicy> policy = allocator->make_policy();
    Rng rng(7);
    VectorArrivalStream arrivals(problem.vms);
    ReplayOptions options;
    options.faults = &plan;
    options.retry.max_attempts = 3;
    return replay_stream(arrivals, problem.servers, *policy, rng, options);
  };

  std::printf("measuring chaos streaming (%d VMs, %d seeded failures, "
              "retries on)...\n",
              num_vms, report.failures);
  std::vector<double> times;
  ReplayReport first;
  ReplayReport last;
  for (int rep = 0; rep < std::max(2, reps); ++rep) {
    times.push_back(time_ms([&] {
      last = run();
      benchmark::DoNotOptimize(last.assignment.data());
    }));
    if (rep == 0) first = last;
  }
  report.median_ms = median(times);
  report.stats = last.faults;
  report.placed = last.placed;
  report.rejected = last.rejected;
  report.total_energy = last.total_energy;
  // The chaos gate: a seeded plan must replay byte-identically run-to-run.
  report.reproducible = first.assignment == last.assignment &&
                        first.total_energy == last.total_energy &&
                        first.faults.rejected_final ==
                            last.faults.rejected_final &&
                        first.faults.downtime_units ==
                            last.faults.downtime_units;
  report.pass = report.reproducible;
  std::printf("  %8.2f ms (median), %zu placed / %zu rejected, "
              "%lld evacuated, %lld downtime units, reproducible %s\n",
              report.median_ms, report.placed, report.rejected,
              static_cast<long long>(report.stats.evacuated),
              static_cast<long long>(report.stats.downtime_units),
              report.reproducible ? "yes" : "NO (BUG)");
  return report;
}

// ---------------------------------------------------------------------------
// Sharded fleet: the two-level scan at 10k / 100k servers
// ---------------------------------------------------------------------------

/// One (shards, strategy, threads) replay of the fleet tier's stream.
struct FleetVariant {
  int shards = 1;
  ShardBy by = ShardBy::kContiguous;
  int threads = 1;
  double median_ms = 0.0;
  double requests_per_sec = 0.0;
  double submit_p99_ms = 0.0;
  double hist_p99_ms = 0.0;
  std::size_t peak_resident_time_units = 0;
  bool matches_reference = true;
};

/// One fleet size tier (10k always, 100k behind --fleet-full).
struct FleetTier {
  int num_servers = 0;
  int num_vms = 0;
  std::vector<FleetVariant> variants;  ///< [0] is the unsharded reference
  double parallel_speedup = 0.0;  ///< reference / best sharded-parallel median
  bool identity = true;           ///< every variant byte-identical — enforced
  bool speedup_enforced = false;
  std::string speedup_unenforced_reason;
  bool pass = true;
};

struct FleetReport {
  unsigned hardware_threads = 0;
  double speedup_budget = 0.0;
  std::vector<FleetTier> tiers;
  bool pass = true;
};

/// Last variant's assignment (single-threaded harness): run_fleet_variant
/// deposits the replay's final assignment here so the tier driver can run
/// the byte-identity comparison without copying it through every return.
std::vector<ServerId>& variant_assignment() {
  static std::vector<ServerId> assignment;
  return assignment;
}

/// The fleet bench uses lowest-idle-power: a representative scan policy with
/// an O(1) score, so the measurement isolates the scan machinery the shards
/// parallelize (triage sweep + tree fallback + merge) rather than the Eq. 17
/// scoring arithmetic the fig2 sections already gate. The deterministic
/// round-robin fleet (make_scaled_fleet) keeps the identity comparison
/// meaningful across hosts.
FleetVariant run_fleet_variant(const ProblemInstance& problem, int shards,
                               ShardBy by, int threads, int reps) {
  FleetVariant variant;
  variant.shards = shards;
  variant.by = by;
  variant.threads = threads;
  std::vector<double> times;
  ReplayReport report;
  for (int rep = 0; rep < reps; ++rep) {
    times.push_back(time_ms([&] {
      AllocatorPtr allocator = make_allocator("lowest-idle-power");
      ScanConfig scan;
      scan.threads = threads;
      scan.shards = shards;
      scan.shard_by = by;
      allocator->set_scan_config(scan);
      std::unique_ptr<PlacementPolicy> policy = allocator->make_policy();
      Rng rng(7);
      VectorArrivalStream arrivals(problem.vms);
      ReplayOptions options;
      options.shard = scan.shard_options();
      report = replay_stream(arrivals, problem.servers, *policy, rng, options);
      benchmark::DoNotOptimize(report.assignment.data());
    }));
  }
  variant.median_ms = median(times);
  variant.requests_per_sec = report.requests_per_sec;
  variant.submit_p99_ms = report.latency.p99_ms;
  variant.hist_p99_ms = report.latency.hist_p99_ms;
  variant.peak_resident_time_units = report.peak_resident_time_units;
  variant_assignment() = report.assignment;
  return variant;
}

FleetTier measure_fleet_tier(int num_servers, int num_vms, int reps,
                             double speedup_budget, bool quick) {
  FleetTier tier;
  tier.num_servers = num_servers;
  tier.num_vms = num_vms;

  WorkloadConfig config;
  config.num_vms = num_vms;
  config.mean_interarrival = 0.5;
  config.mean_duration = 50.0;
  config.vm_types = all_vm_types();
  Rng rng(42);
  ProblemInstance problem =
      make_problem(generate_workload(config, rng),
                   make_scaled_fleet(num_servers, all_server_types(), 1.0));

  std::printf("measuring sharded fleet scan (%d servers, %d VMs, "
              "lowest-idle-power stream)...\n",
              num_servers, num_vms);

  // The reference: unsharded, serial — the historical scan at this scale.
  tier.variants.push_back(
      run_fleet_variant(problem, 1, ShardBy::kContiguous, 1, reps));
  const std::vector<ServerId> reference = variant_assignment();
  // Copy, not reference: the push_backs below reallocate tier.variants.
  const FleetVariant ref = tier.variants.front();
  std::printf("  shards=1  threads=1  %10.2f ms  %8.0f req/s  p99 %.4f ms  "
              "peak resident %zu units\n",
              ref.median_ms, ref.requests_per_sec, ref.submit_p99_ms,
              ref.peak_resident_time_units);

  // Identity sweep (serial) + the concurrent two-level sweep. kHash is the
  // worst-case (non-identity) permutation; the serial points double as the
  // per-shard-count wall-time ablation at benchmark scale.
  struct Config {
    int shards;
    ShardBy by;
    int threads;
  };
  std::vector<Config> configs = {{4, ShardBy::kContiguous, 1},
                                 {16, ShardBy::kHash, 1},
                                 {64, ShardBy::kType, 1},
                                 {16, ShardBy::kHash, 4}};
  if (quick) configs = {{4, ShardBy::kContiguous, 1}, {16, ShardBy::kHash, 4}};
  double best_parallel_ms = 0.0;
  for (const Config& c : configs) {
    FleetVariant variant =
        run_fleet_variant(problem, c.shards, c.by, c.threads, reps);
    variant.matches_reference = variant_assignment() == reference;
    tier.identity = tier.identity && variant.matches_reference;
    if (c.threads > 1 &&
        (best_parallel_ms == 0.0 || variant.median_ms < best_parallel_ms))
      best_parallel_ms = variant.median_ms;
    std::printf("  shards=%-3d threads=%d %10.2f ms  %8.0f req/s  p99 %.4f "
                "ms  (%s)  assignments %s\n",
                variant.shards, variant.threads, variant.median_ms,
                variant.requests_per_sec, variant.submit_p99_ms,
                to_string(variant.by).c_str(),
                variant.matches_reference ? "identical" : "DIVERGED (BUG)");
    tier.variants.push_back(std::move(variant));
  }
  if (best_parallel_ms > 0.0)
    tier.parallel_speedup = ref.median_ms / best_parallel_ms;

  // The >= 1.5x sharded-parallel gate is a large-fleet property: below 100k
  // servers the per-request scan is too short for the fan-out to amortize,
  // and without real cores there is nothing to scale onto — so it enforces
  // only at the 100k tier on >= 4-thread hosts, outside --quick (always
  // labeled in the artifact).
  const unsigned hw = std::thread::hardware_concurrency();
  tier.speedup_enforced = !quick && num_servers >= 100000 && hw >= 4;
  if (!tier.speedup_enforced) {
    tier.speedup_unenforced_reason =
        quick ? "quick mode"
        : num_servers < 100000
            ? "sub-100k tier"
            : "host has fewer than 4 hardware threads";
  }
  tier.pass = tier.identity &&
              (!tier.speedup_enforced ||
               tier.parallel_speedup >= speedup_budget);
  std::printf("  sharded-parallel speedup: %.2fx (budget %.1fx, %s%s) %s\n",
              tier.parallel_speedup, speedup_budget,
              tier.speedup_enforced ? "enforced" : "not enforced: ",
              tier.speedup_enforced ? ""
                                    : tier.speedup_unenforced_reason.c_str(),
              tier.pass ? "OK" : "FAIL");
  return tier;
}

FleetReport measure_fleet(int reps, double speedup_budget, bool quick,
                          bool full) {
  FleetReport report;
  report.hardware_threads = std::thread::hardware_concurrency();
  report.speedup_budget = speedup_budget;
  const int fleet_reps = std::max(2, reps / 2);
  if (quick) {
    // Smoke scale: the identity gate still runs, the tier is just small
    // enough for the Release CI overhead-guard job.
    report.tiers.push_back(
        measure_fleet_tier(2000, 400, fleet_reps, speedup_budget, quick));
  } else {
    report.tiers.push_back(
        measure_fleet_tier(10000, 2000, fleet_reps, speedup_budget, quick));
    if (full)
      report.tiers.push_back(
          measure_fleet_tier(100000, 600, std::max(2, fleet_reps / 2),
                             speedup_budget, quick));
  }
  for (const FleetTier& tier : report.tiers)
    report.pass = report.pass && tier.pass;
  return report;
}

int run_perf_report(const std::string& out_path, int num_vms, int reps,
                    double overhead_budget, double speedup_budget,
                    double single_thread_budget, double envelope_budget,
                    double fleet_speedup_budget, bool fleet_full,
                    bool quick) {
  // Harvest the previous artifact's medians before this run overwrites it.
  const std::vector<PreviousPoint> previous = read_previous_points(out_path);
  std::printf("measuring null-sink observability overhead (%d VMs, %d reps "
              "per variant)...\n",
              num_vms, reps);
  const OverheadReport overhead = measure_overhead(num_vms, reps);
  const bool pass = overhead.overhead <= overhead_budget;

  std::printf("  uninstrumented: %8.2f ms (median)\n",
              median(overhead.uninstrumented_ms));
  std::printf("  null sink:      %8.2f ms (median)  -> overhead %+.2f%% "
              "(best paired ratio, budget %.0f%%) %s\n",
              median(overhead.null_sink_ms), 100.0 * overhead.overhead,
              100.0 * overhead_budget, pass ? "OK" : "FAIL");
  std::printf("  live trace:     %8.2f ms (median), %zu decision records\n",
              median(overhead.traced_ms), overhead.trace_records);
  std::printf("  assignments identical: %s\n",
              overhead.assignments_match ? "yes" : "NO (BUG)");

  std::vector<AllocatorPoint> points;
  for (const std::string& name :
       {std::string("min-incremental"), std::string("ffps"),
        std::string("best-fit-cpu")}) {
    for (int n : {100, 500, num_vms}) {
      points.push_back(measure_allocator(name, n, std::max(3, reps / 2)));
      const AllocatorPoint& p = points.back();
      std::printf("  %-16s n=%-5d %8.2f ms  (%.0f VMs/s)\n", p.name.c_str(),
                  p.num_vms, p.median_ms, p.vms_per_sec);
    }
  }

  const SingleThreadGate single_thread =
      check_single_thread(points, num_vms, single_thread_budget, quick);

  const ParallelScanReport scan =
      measure_parallel_scan(num_vms, reps, speedup_budget, quick);

  const EnvelopeReport envelope =
      measure_envelope(num_vms, reps, envelope_budget, quick);

  const StreamingReport streaming =
      measure_streaming(num_vms, std::max(3, reps / 2));

  // The telemetry gate runs at the fig2@500 acceptance point in full mode
  // (quick keeps the smoke-test scenario size).
  const TelemetryReport telemetry = measure_telemetry(
      quick ? num_vms : 500, reps, overhead_budget, quick);

  // The WAL gate shares the fig2@500 acceptance point (and the telemetry
  // guard's budget): the serve daemon's journal must cost <= 5% over the
  // bare stream replay.
  const WalReport wal =
      measure_wal(quick ? num_vms : 500, reps, overhead_budget, quick);

  const ChaosReport chaos = measure_chaos(num_vms, std::max(2, reps / 2));

  const FleetReport fleet =
      measure_fleet(reps, fleet_speedup_budget, quick, fleet_full);

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n  \"scenario\": {\"family\": \"fig2\", \"num_vms\": " << num_vms
      << ", \"mean_interarrival\": 2.0, \"seed\": 42},\n";
  out << "  \"overhead_guard\": {\n"
      << "    \"uninstrumented_ms\": " << json_array(overhead.uninstrumented_ms)
      << ",\n"
      << "    \"null_sink_ms\": " << json_array(overhead.null_sink_ms) << ",\n"
      << "    \"traced_ms\": " << json_array(overhead.traced_ms) << ",\n"
      << "    \"median_uninstrumented_ms\": "
      << median(overhead.uninstrumented_ms) << ",\n"
      << "    \"median_null_sink_ms\": " << median(overhead.null_sink_ms)
      << ",\n"
      << "    \"median_traced_ms\": " << median(overhead.traced_ms) << ",\n"
      << "    \"null_sink_overhead\": " << overhead.overhead << ",\n"
      << "    \"overhead_budget\": " << overhead_budget << ",\n"
      << "    \"trace_records\": " << overhead.trace_records << ",\n"
      << "    \"assignments_match\": "
      << (overhead.assignments_match ? "true" : "false") << ",\n"
      << "    \"pass\": " << (pass ? "true" : "false") << "\n  },\n";
  out << "  \"allocators\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const AllocatorPoint& p = points[i];
    out << "    {\"name\": \"" << p.name << "\", \"num_vms\": " << p.num_vms
        << ", \"median_ms\": " << p.median_ms
        << ", \"vms_per_sec\": " << p.vms_per_sec << "}"
        << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"single_thread\": {\n"
      << "    \"allocator\": \"min-incremental\",\n"
      << "    \"num_vms\": " << single_thread.num_vms << ",\n"
      << "    \"baseline_ms\": " << single_thread.baseline_ms << ",\n"
      << "    \"measured_ms\": " << single_thread.measured_ms << ",\n"
      << "    \"speedup_vs_baseline\": " << single_thread.speedup << ",\n"
      << "    \"budget\": " << single_thread_budget << ",\n"
      << "    \"enforced\": " << (single_thread.enforced ? "true" : "false")
      << ",\n"
      << "    \"pass\": " << (single_thread.pass ? "true" : "false")
      << "\n  },\n";
  out << "  \"regression\": {\n"
      << "    \"note\": \"previous-run medians from the prior artifact at "
         "this path; informational, the gates live in single_thread and "
         "parallel_scan\",\n"
      << "    \"points\": [\n";
  {
    bool first_point = true;
    for (const AllocatorPoint& p : points) {
      for (const PreviousPoint& prev : previous) {
        if (prev.name != p.name || prev.num_vms != p.num_vms) continue;
        if (!first_point) out << ",\n";
        first_point = false;
        const double ratio =
            prev.median_ms > 0 ? p.median_ms / prev.median_ms : 0.0;
        out << "      {\"name\": \"" << p.name
            << "\", \"num_vms\": " << p.num_vms
            << ", \"previous_ms\": " << prev.median_ms
            << ", \"median_ms\": " << p.median_ms
            << ", \"ratio\": " << ratio << "}";
        break;
      }
    }
    out << "\n    ]\n  },\n";
  }
  out << "  \"parallel_scan\": {\n"
      << "    \"hardware_threads\": " << scan.hardware_threads << ",\n"
      << "    \"serial_ms\": " << scan.serial_ms << ",\n";
  for (const auto& [threads, ms] : scan.parallel_ms)
    out << "    \"parallel_ms_t" << threads << "\": " << ms << ",\n";
  out << "    \"speedup_at_4_threads\": " << scan.speedup_at_4 << ",\n"
      << "    \"speedup_budget\": " << speedup_budget << ",\n"
      << "    \"speedup_enforced\": "
      << (scan.speedup_enforced ? "true" : "false") << ",\n"
      << "    \"speedup_unenforced_reason\": \""
      << scan.speedup_unenforced_reason << "\",\n"
      << "    \"assignments_match\": "
      << (scan.assignments_match ? "true" : "false") << ",\n"
      << "    \"cache\": {\n"
      << "      \"fig2_hit_rate\": " << scan.fig2_hit_rate << ",\n"
      << "      \"fig2_cached_ms\": " << scan.fig2_cached_ms << ",\n"
      << "      \"fig2_auto_disabled\": "
      << (scan.fig2_cache_auto_disabled ? "true" : "false") << ",\n"
      << "      \"batch_hit_rate\": " << scan.batch_hit_rate << ",\n"
      << "      \"batch_uncached_ms\": " << scan.batch_uncached_ms << ",\n"
      << "      \"batch_cached_ms\": " << scan.batch_cached_ms << ",\n"
      << "      \"overhead_enforced\": "
      << (scan.cache_overhead_enforced ? "true" : "false") << ",\n"
      << "      \"overhead_ok\": "
      << (scan.cache_overhead_ok ? "true" : "false") << "\n"
      << "    },\n"
      << "    \"pass\": " << (scan.pass ? "true" : "false") << "\n  },\n";
  out << "  \"envelope\": {\n"
      << "    \"num_vms\": " << envelope.num_vms << ",\n"
      << "    \"sweep_ms\": " << json_array(envelope.sweep_ms) << ",\n"
      << "    \"quickfit_loop_ms\": " << json_array(envelope.quickfit_ms)
      << ",\n"
      << "    \"median_sweep_ms\": " << median(envelope.sweep_ms) << ",\n"
      << "    \"median_quickfit_loop_ms\": " << median(envelope.quickfit_ms)
      << ",\n"
      << "    \"triage_speedup\": " << envelope.triage_speedup << ",\n"
      << "    \"triage_budget\": " << envelope.triage_budget << ",\n"
      << "    \"triage_enforced\": "
      << (envelope.triage_enforced ? "true" : "false") << ",\n"
      << "    \"verdicts_match\": "
      << (envelope.verdicts_match ? "true" : "false") << ",\n"
      << "    \"min_incremental_on_ms\": " << envelope.on_ms << ",\n"
      << "    \"min_incremental_off_ms\": " << envelope.off_ms << ",\n"
      << "    \"min_incremental_ratio\": " << envelope.end_to_end_ratio
      << ",\n"
      << "    \"lowest_idle_power_on_ms\": " << envelope.lip_on_ms << ",\n"
      << "    \"lowest_idle_power_off_ms\": " << envelope.lip_off_ms << ",\n"
      << "    \"lowest_idle_power_ratio\": " << envelope.lip_ratio << ",\n"
      << "    \"assignments_match\": "
      << (envelope.assignments_match ? "true" : "false") << ",\n"
      << "    \"pass\": " << (envelope.pass ? "true" : "false") << "\n  },\n";
  out << "  \"streaming\": {\n"
      << "    \"allocator\": \"min-incremental\",\n"
      << "    \"num_vms\": " << streaming.num_vms << ",\n";
  const auto emit_variant = [&out](const char* key,
                                   const StreamingVariant& v, bool last) {
    out << "    \"" << key << "\": {\n"
        << "      \"median_ms\": " << v.median_ms << ",\n"
        << "      \"requests_per_sec\": " << v.requests_per_sec << ",\n"
        << "      \"submit_p50_ms\": " << v.p50_ms << ",\n"
        << "      \"submit_p99_ms\": " << v.p99_ms << ",\n"
        << "      \"peak_resident_time_units\": " << v.peak_resident_time_units
        << ",\n"
        << "      \"matches_batch\": " << (v.matches_batch ? "true" : "false")
        << "\n    }" << (last ? "" : ",") << "\n";
  };
  emit_variant("rolling_gc", streaming.gc, false);
  emit_variant("no_gc", streaming.no_gc, false);
  out << "    \"pass\": " << (streaming.pass ? "true" : "false") << "\n  },\n";
  out << "  \"telemetry\": {\n"
      << "    \"allocator\": \"min-incremental\",\n"
      << "    \"num_vms\": " << telemetry.num_vms << ",\n"
      << "    \"plain_ms\": " << json_array(telemetry.plain_ms) << ",\n"
      << "    \"telemetry_ms\": " << json_array(telemetry.telemetry_ms)
      << ",\n"
      << "    \"median_plain_ms\": " << median(telemetry.plain_ms) << ",\n"
      << "    \"median_telemetry_ms\": " << median(telemetry.telemetry_ms)
      << ",\n"
      << "    \"overhead\": " << telemetry.overhead << ",\n"
      << "    \"overhead_budget\": " << overhead_budget << ",\n"
      << "    \"overhead_enforced\": "
      << (telemetry.overhead_enforced ? "true" : "false") << ",\n"
      << "    \"samples\": " << telemetry.samples << ",\n"
      << "    \"ledger_entries\": " << telemetry.ledger_entries << ",\n"
      << "    \"ledger_total\": " << telemetry.ledger_total << ",\n"
      << "    \"engine_total\": " << telemetry.engine_total << ",\n"
      << "    \"conserves\": " << (telemetry.conserves ? "true" : "false")
      << ",\n"
      << "    \"assignments_match\": "
      << (telemetry.assignments_match ? "true" : "false") << ",\n"
      << "    \"pass\": " << (telemetry.pass ? "true" : "false") << "\n  },\n";
  out << "  \"wal\": {\n"
      << "    \"allocator\": \"min-incremental\",\n"
      << "    \"num_vms\": " << wal.num_vms << ",\n"
      << "    \"journal_dir\": \"" << wal.journal_dir << "\",\n"
      << "    \"tmpfs\": " << (wal.tmpfs ? "true" : "false") << ",\n"
      << "    \"sync_every\": " << wal.sync_every << ",\n"
      << "    \"stream_ms\": " << json_array(wal.stream_ms) << ",\n"
      << "    \"wal_ms\": " << json_array(wal.wal_ms) << ",\n"
      << "    \"median_stream_ms\": " << median(wal.stream_ms) << ",\n"
      << "    \"median_wal_ms\": " << median(wal.wal_ms) << ",\n"
      << "    \"overhead\": " << wal.overhead << ",\n"
      << "    \"overhead_budget\": " << overhead_budget << ",\n"
      << "    \"overhead_enforced\": "
      << (wal.overhead_enforced ? "true" : "false") << ",\n"
      << "    \"journal_records\": " << wal.journal_records << ",\n"
      << "    \"journal_bytes\": " << wal.journal_bytes << ",\n"
      << "    \"assignments_match\": "
      << (wal.assignments_match ? "true" : "false") << ",\n"
      << "    \"energy_match\": " << (wal.energy_match ? "true" : "false")
      << ",\n"
      << "    \"pass\": " << (wal.pass ? "true" : "false") << "\n  },\n";
  out << "  \"chaos\": {\n"
      << "    \"allocator\": \"min-incremental\",\n"
      << "    \"num_vms\": " << chaos.num_vms << ",\n"
      << "    \"seeded_failures\": " << chaos.failures << ",\n"
      << "    \"median_ms\": " << chaos.median_ms << ",\n"
      << "    \"placed\": " << chaos.placed << ",\n"
      << "    \"rejected\": " << chaos.rejected << ",\n"
      << "    \"total_energy\": " << chaos.total_energy << ",\n"
      << "    \"fault_events\": " << chaos.stats.fault_events << ",\n"
      << "    \"displaced\": " << chaos.stats.displaced << ",\n"
      << "    \"evacuated\": " << chaos.stats.evacuated << ",\n"
      << "    \"retries\": " << chaos.stats.retries << ",\n"
      << "    \"retried_placed\": " << chaos.stats.retried_placed << ",\n"
      << "    \"rejected_final\": " << chaos.stats.rejected_final << ",\n"
      << "    \"downtime_units\": " << chaos.stats.downtime_units << ",\n"
      << "    \"reproducible\": " << (chaos.reproducible ? "true" : "false")
      << ",\n"
      << "    \"pass\": " << (chaos.pass ? "true" : "false") << "\n  },\n";
  out << "  \"fleet\": {\n"
      << "    \"allocator\": \"lowest-idle-power\",\n"
      << "    \"hardware_threads\": " << fleet.hardware_threads << ",\n"
      << "    \"speedup_budget\": " << fleet.speedup_budget << ",\n"
      << "    \"tiers\": [\n";
  for (std::size_t t = 0; t < fleet.tiers.size(); ++t) {
    const FleetTier& tier = fleet.tiers[t];
    out << "      {\"num_servers\": " << tier.num_servers
        << ", \"num_vms\": " << tier.num_vms << ",\n"
        << "       \"variants\": [\n";
    for (std::size_t v = 0; v < tier.variants.size(); ++v) {
      const FleetVariant& var = tier.variants[v];
      out << "         {\"shards\": " << var.shards << ", \"shard_by\": \""
          << to_string(var.by) << "\", \"threads\": " << var.threads
          << ", \"median_ms\": " << var.median_ms
          << ", \"requests_per_sec\": " << var.requests_per_sec
          << ", \"submit_p99_ms\": " << var.submit_p99_ms
          << ", \"hist_p99_ms\": " << var.hist_p99_ms
          << ", \"peak_resident_time_units\": "
          << var.peak_resident_time_units << ", \"matches_reference\": "
          << (var.matches_reference ? "true" : "false") << "}"
          << (v + 1 < tier.variants.size() ? "," : "") << "\n";
    }
    out << "       ],\n"
        << "       \"parallel_speedup\": " << tier.parallel_speedup << ",\n"
        << "       \"identity\": " << (tier.identity ? "true" : "false")
        << ",\n"
        << "       \"speedup_enforced\": "
        << (tier.speedup_enforced ? "true" : "false") << ",\n"
        << "       \"speedup_unenforced_reason\": \""
        << tier.speedup_unenforced_reason << "\",\n"
        << "       \"pass\": " << (tier.pass ? "true" : "false") << "}"
        << (t + 1 < fleet.tiers.size() ? "," : "") << "\n";
  }
  out << "    ],\n"
      << "    \"pass\": " << (fleet.pass ? "true" : "false") << "\n  }\n";
  out << "}\n";
  std::printf("wrote %s\n", out_path.c_str());

  if (!overhead.assignments_match) {
    std::fprintf(stderr,
                 "FAIL: instrumented allocator diverged from the reference "
                 "loop\n");
    return 1;
  }
  if (!pass) {
    std::fprintf(stderr,
                 "FAIL: null-sink overhead %.2f%% exceeds budget %.0f%%\n",
                 100.0 * overhead.overhead, 100.0 * overhead_budget);
    return 1;
  }
  if (!single_thread.pass) {
    std::fprintf(stderr,
                 "FAIL: single-thread speedup %.2fx vs committed baseline "
                 "below budget %.1fx (n=%d)\n",
                 single_thread.speedup, single_thread_budget,
                 single_thread.num_vms);
    return 1;
  }
  if (!scan.assignments_match) {
    std::fprintf(stderr,
                 "FAIL: parallel or cached scan diverged from the serial "
                 "assignment\n");
    return 1;
  }
  if (scan.cache_overhead_enforced && !scan.cache_overhead_ok) {
    std::fprintf(stderr,
                 "FAIL: cached fig2 run %.2f ms slower than uncached %.2f ms "
                 "beyond 10%% tolerance (auto-disable broken?)\n",
                 scan.fig2_cached_ms, scan.serial_ms);
    return 1;
  }
  if (!scan.pass) {
    std::fprintf(stderr,
                 "FAIL: 4-thread speedup %.2fx below budget %.1fx\n",
                 scan.speedup_at_4, speedup_budget);
    return 1;
  }
  if (!envelope.verdicts_match) {
    std::fprintf(stderr,
                 "FAIL: envelope classify() verdicts diverged from "
                 "quick_fit\n");
    return 1;
  }
  if (!envelope.assignments_match) {
    std::fprintf(stderr,
                 "FAIL: envelope-on assignment diverged from envelope-off\n");
    return 1;
  }
  if (!envelope.pass) {
    std::fprintf(stderr,
                 "FAIL: envelope triage speedup %.2fx below budget %.1fx\n",
                 envelope.triage_speedup, envelope.triage_budget);
    return 1;
  }
  if (!streaming.pass) {
    std::fprintf(stderr,
                 "FAIL: streaming replay diverged from the batch "
                 "assignment\n");
    return 1;
  }
  if (!telemetry.assignments_match) {
    std::fprintf(stderr,
                 "FAIL: binding the telemetry stack changed the replay "
                 "(assignments or total energy diverged)\n");
    return 1;
  }
  if (!telemetry.conserves) {
    std::fprintf(stderr,
                 "FAIL: energy ledger does not conserve: %.9f vs engine "
                 "%.9f W*min (1e-6 relative)\n",
                 telemetry.ledger_total, telemetry.engine_total);
    return 1;
  }
  if (!telemetry.pass) {
    std::fprintf(stderr,
                 "FAIL: telemetry overhead %.2f%% exceeds budget %.0f%%\n",
                 100.0 * telemetry.overhead, 100.0 * overhead_budget);
    return 1;
  }
  if (!wal.assignments_match || !wal.energy_match) {
    std::fprintf(stderr,
                 "FAIL: WAL journal did not round-trip to the batch replay "
                 "(assignment %s, energy %s)\n",
                 wal.assignments_match ? "ok" : "DIVERGED",
                 wal.energy_match ? "ok" : "DIVERGED");
    return 1;
  }
  if (!wal.pass) {
    std::fprintf(stderr,
                 "FAIL: WAL submit overhead %.2f%% exceeds budget %.0f%%\n",
                 100.0 * wal.overhead, 100.0 * overhead_budget);
    return 1;
  }
  if (!chaos.pass) {
    std::fprintf(stderr,
                 "FAIL: seeded chaos replay was not reproducible "
                 "run-to-run\n");
    return 1;
  }
  for (const FleetTier& tier : fleet.tiers) {
    if (!tier.identity) {
      std::fprintf(stderr,
                   "FAIL: sharded fleet scan diverged from the unsharded "
                   "assignment at %d servers\n",
                   tier.num_servers);
      return 1;
    }
    if (!tier.pass) {
      std::fprintf(stderr,
                   "FAIL: sharded-parallel fleet speedup %.2fx below budget "
                   "%.1fx at %d servers\n",
                   tier.parallel_speedup, fleet.speedup_budget,
                   tier.num_servers);
      return 1;
    }
  }
  return 0;
}

}  // namespace

BENCHMARK_CAPTURE(BM_Allocator, min_incremental, "min-incremental")
    ->Arg(100)
    ->Arg(500)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Allocator, ffps, "ffps")
    ->Arg(100)
    ->Arg(500)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Allocator, best_fit_cpu, "best-fit-cpu")
    ->Arg(100)
    ->Arg(500)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EvaluateCost)->Arg(100)->Arg(500)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Metrics)->Arg(100)->Arg(500)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FeasibilityProbe);
BENCHMARK(BM_IncrementalCostDelta);

int main(int argc, char** argv) {
  // Separate our flags from google-benchmark's (--benchmark_*).
  std::vector<char*> gbench_argv{argv[0]};
  bool run_gbench = false;
  std::vector<const char*> own_argv{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--gbench") {
      run_gbench = true;
    } else if (arg.rfind("--benchmark_", 0) == 0) {
      gbench_argv.push_back(argv[i]);
    } else {
      own_argv.push_back(argv[i]);
    }
  }

  esva::CliParser parser(
      "bench/perf_allocators — allocator throughput, observability overhead "
      "guard, BENCH_perf.json artifact (add --gbench for microbenchmarks)");
  parser.add_string("out", "BENCH_perf.json", "JSON artifact output path");
  parser.add_int("vms", 1000, "VM count of the overhead-guard scenario");
  parser.add_int("reps", 7, "timed repetitions per variant");
  parser.add_double("overhead-budget", 0.05,
                    "max tolerated null-sink slowdown (fraction)");
  parser.add_double("speedup-budget", 2.0,
                    "min required 4-thread scan speedup (enforced only on "
                    ">=4-thread machines, full mode)");
  parser.add_double("single-thread-budget", 2.0,
                    "min required single-thread min-incremental speedup vs "
                    "the committed baseline medians (enforced in full mode "
                    "when a baseline exists for --vms)");
  parser.add_double("envelope-budget", 1.3,
                    "min required SoA envelope sweep speedup vs the AoS "
                    "quick_fit loop (enforced in full mode)");
  parser.add_double("fleet-speedup-budget", 1.5,
                    "min required sharded-parallel fleet scan speedup vs the "
                    "single-shard serial scan (enforced at the 100k tier on "
                    ">=4-thread machines, full mode)");
  parser.add_bool("fleet-full",
                  "also run the 100k-server fleet tier (default stops at "
                  "10k; the committed BENCH_perf.json carries both)");
  parser.add_bool("quick", "300-VM scenario, 3 reps (smoke test)");
  if (!parser.parse(static_cast<int>(own_argv.size()), own_argv.data()))
    return parser.parse_error() ? 1 : 0;

  int num_vms = static_cast<int>(parser.get_int("vms"));
  int reps = static_cast<int>(parser.get_int("reps"));
  if (parser.get_bool("quick")) {
    num_vms = 300;
    reps = 5;
  }

  const int status =
      run_perf_report(parser.get_string("out"), num_vms, reps,
                      parser.get_double("overhead-budget"),
                      parser.get_double("speedup-budget"),
                      parser.get_double("single-thread-budget"),
                      parser.get_double("envelope-budget"),
                      parser.get_double("fleet-speedup-budget"),
                      parser.get_bool("fleet-full"),
                      parser.get_bool("quick"));
  if (run_gbench) {
    int gbench_argc = static_cast<int>(gbench_argv.size());
    benchmark::Initialize(&gbench_argc, gbench_argv.data());
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return status;
}
