// Fig. 9 — energy reduction ratio vs system load (standard VMs), with four
// series: CPU load and memory load, on both the all-types server pool and the
// types-1-3 pool. Linear fits; the paper finds the reduction decreasing
// close-to-linearly with load and higher when all server types are in play.

#include <algorithm>
#include <fstream>
#include <iostream>

#include "bench_util.h"
#include "util/table.h"
#include "util/csv.h"

namespace {

struct LoadSeries {
  esva::Series cpu;
  esva::Series mem;
};

LoadSeries sweep(const esva::bench::BenchArgs& args, bool all_server_types) {
  using namespace esva;
  std::vector<std::pair<double, double>> cpu_points;
  std::vector<std::pair<double, double>> mem_points;
  for (double interarrival : interarrival_sweep()) {
    const Scenario scenario =
        fig7_scenario(100, interarrival, all_server_types);
    const PointOutcome outcome = run_point(scenario, bench::config_from(args));
    cpu_points.emplace_back(outcome.baseline_cpu_load(),
                            outcome.headline_reduction());
    mem_points.emplace_back(outcome.baseline_mem_load(),
                            outcome.headline_reduction());
  }
  std::sort(cpu_points.begin(), cpu_points.end());
  std::sort(mem_points.begin(), mem_points.end());

  LoadSeries result;
  const std::string pool = all_server_types ? "all types" : "types 1-3";
  result.cpu.label = "vs CPU load (" + pool + ")";
  result.mem.label = "vs memory load (" + pool + ")";
  for (const auto& [load, reduction] : cpu_points) {
    result.cpu.xs.push_back(load);
    result.cpu.ys.push_back(reduction);
  }
  for (const auto& [load, reduction] : mem_points) {
    result.mem.xs.push_back(load);
    result.mem.ys.push_back(reduction);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace esva;
  const bench::BenchArgs args = bench::parse_bench_args(
      argc, argv, "fig9_load_linear — reproduce Fig. 9 (reduction vs load)");
  bench::print_banner(
      "Fig. 9 — energy reduction ratio vs system load (standard VMs)",
      "reduction decreases ~linearly with load; higher when all server "
      "types are used than with types 1-3 only");

  const LoadSeries all = sweep(args, /*all_server_types=*/true);
  const LoadSeries t13 = sweep(args, /*all_server_types=*/false);

  for (const Series& s : {all.cpu, all.mem, t13.cpu, t13.mem}) {
    FigureSpec spec;
    spec.title = "Fig. 9 — " + s.label;
    spec.x_label = "load of the system (FFPS avg util)";
    spec.y_label = "energy reduction ratio";
    spec.fit = FitModel::Linear;
    print_figure(std::cout, spec, {s});
  }

  // Pool comparison at matched sweep points.
  double mean_all = 0.0;
  double mean_t13 = 0.0;
  for (std::size_t k = 0; k < all.cpu.ys.size(); ++k) {
    mean_all += all.cpu.ys[k];
    mean_t13 += t13.cpu.ys[k];
  }
  std::printf("mean reduction: %s (all server types) vs %s (types 1-3) "
              "(paper: former is higher)\n",
              fmt_percent(mean_all / all.cpu.ys.size()).c_str(),
              fmt_percent(mean_t13 / t13.cpu.ys.size()).c_str());

  if (!args.csv.empty()) {
    std::ofstream out(args.csv);
    CsvWriter csv(out);
    csv.row({"series", "load", "reduction"});
    for (const Series& s : {all.cpu, all.mem, t13.cpu, t13.mem})
      for (std::size_t k = 0; k < s.xs.size(); ++k)
        csv.typed_row(s.label, s.xs[k], s.ys[k]);
  }
  return 0;
}
