// Ablation A11 — exact window polish: how much optimality is left on the
// table after each allocator, and at what search cost? Runs the hybrid
// greedy+B&B polisher (ext/window_reopt) over Fig. 2-style instances.

#include <cstdio>

#include "baselines/registry.h"
#include "bench_util.h"
#include "ext/window_reopt.h"
#include "sim/metrics.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace esva;
  const bench::BenchArgs args = bench::parse_bench_args(
      argc, argv, "ablation_window_reopt — exact polish of each allocator");
  bench::print_banner(
      "Ablation A11 — exact window re-optimization",
      "the polish closes most of a weak allocator's gap but finds little "
      "left in min-incremental's output (greedy is near locally optimal)");

  const Scenario scenario = fig2_scenario(args.quick ? 60 : 120, 4.0);

  TextTable table;
  table.set_header({"allocator", "energy before", "after polish",
                    "polish reduction", "windows improved", "B&B nodes"});

  for (const std::string name :
       {"min-incremental", "ffps", "dot-product-fit", "random-fit"}) {
    Accumulator before;
    Accumulator after;
    Accumulator improved;
    Accumulator nodes;
    Rng master(args.seed);
    for (int run = 0; run < args.runs; ++run) {
      Rng run_master = master.split();
      Rng instance_rng = run_master.split();
      const ProblemInstance problem = scenario.instantiate(instance_rng);
      Rng alloc_rng = run_master.split();
      const Allocation alloc =
          make_allocator(name)->allocate(problem, alloc_rng);

      WindowReoptConfig config;
      config.group_size = 5;
      config.passes = 2;
      config.node_limit_per_window = 500'000;
      const WindowReoptResult result =
          window_reoptimize(problem, alloc, config);
      before.add(result.energy_before);
      after.add(result.energy_after);
      improved.add(static_cast<double>(result.windows_improved));
      nodes.add(static_cast<double>(result.nodes_explored));
    }
    table.add_row(
        {name, fmt_double(before.mean(), 0), fmt_double(after.mean(), 0),
         fmt_percent((before.mean() - after.mean()) / before.mean()),
         fmt_double(improved.mean(), 1), fmt_double(nodes.mean(), 0)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("config: windows of 5 VMs, 50%% overlap, 2 passes, 500k nodes "
              "per window.\n");
  return 0;
}
