// Ablation A3 — optimality gap of the heuristic on tiny instances, measured
// against the in-tree exact branch-and-bound solver (the ILP of Eqs. 8-14).
// The paper formulates the ILP but never reports gaps; this bench fills that
// gap and doubles as a correctness check (heuristic >= optimal always).

#include <cstdio>

#include "baselines/registry.h"
#include "bench_util.h"
#include "ilp/branch_and_bound.h"
#include "test_support.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace esva;
  const bench::BenchArgs args = bench::parse_bench_args(
      argc, argv, "ilp_gap — heuristic vs exact optimum on tiny instances");
  bench::print_banner(
      "Ablation A3 — optimality gap vs the exact ILP optimum",
      "greedy should land within a modest factor of optimal on tiny "
      "instances; FFPS lands further away");

  const int instances = args.quick ? 8 : 25;
  TextTable table;
  table.set_header({"allocator", "mean gap", "max gap", "wins (gap=0)"});

  struct GapStats {
    Accumulator gap;
    double max_gap = 0.0;
    int exact_matches = 0;
  };
  std::map<std::string, GapStats> stats;
  const std::vector<std::string> names{"min-incremental", "ffps",
                                       "best-fit-cpu"};

  Accumulator nodes;
  int solved = 0;
  Rng master(args.seed);
  for (int k = 0; k < instances; ++k) {
    Rng instance_rng = master.split();
    const ProblemInstance problem =
        bench::tiny_random_problem(instance_rng, 8, 4);
    const ExactResult exact = solve_exact(problem);
    if (!exact.optimal) continue;
    ++solved;
    nodes.add(static_cast<double>(exact.nodes_explored));

    for (const std::string& name : names) {
      Rng alloc_rng = master.split();
      const Allocation alloc =
          make_allocator(name)->allocate(problem, alloc_rng);
      if (!alloc.fully_allocated()) continue;
      const double gap =
          evaluate_cost(problem, alloc).total() / exact.cost - 1.0;
      GapStats& s = stats[name];
      s.gap.add(gap);
      s.max_gap = std::max(s.max_gap, gap);
      if (gap < 1e-9) ++s.exact_matches;
    }
  }

  for (const std::string& name : names) {
    const GapStats& s = stats[name];
    table.add_row({name, fmt_percent(s.gap.mean()), fmt_percent(s.max_gap),
                   std::to_string(s.exact_matches) + "/" +
                       std::to_string(solved)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("exact solver: %d/%d instances solved to optimality, "
              "mean %.0f B&B nodes\n",
              solved, instances, nodes.mean());
  return 0;
}
