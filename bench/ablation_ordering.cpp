// Ablation A1 — does the paper's "increasing start time" presentation order
// matter? Runs the heuristic and FFPS under four VM orders on the Fig. 2
// workload and compares total energy. (The paper asserts the start-time
// order without ablating it; this bench fills that gap.)

#include <cstdio>

#include "baselines/ordering.h"
#include "bench_util.h"
#include "sim/metrics.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace esva;
  const bench::BenchArgs args = bench::parse_bench_args(
      argc, argv, "ablation_ordering — VM presentation-order ablation");
  bench::print_banner(
      "Ablation A1 — VM presentation order",
      "the paper presents VMs in increasing start-time order; offline "
      "orders (duration-desc, cpu-desc) are only available with hindsight");

  const Scenario scenario = fig2_scenario(200, 4.0);
  TextTable table;
  table.set_header({"allocator", "order", "mean total energy (W*min)",
                    "vs start-time order"});

  for (const std::string base : {"min-incremental", "ffps"}) {
    double reference = 0.0;
    for (VmOrder order : all_vm_orders()) {
      Accumulator cost;
      Rng master(args.seed);
      for (int run = 0; run < args.runs; ++run) {
        Rng run_master = master.split();
        Rng instance_rng = run_master.split();
        const ProblemInstance problem = scenario.instantiate(instance_rng);
        Rng alloc_rng = run_master.split();
        AllocatorPtr allocator = make_with_order(base, order);
        const Allocation alloc = allocator->allocate(problem, alloc_rng);
        cost.add(evaluate_cost(problem, alloc).total());
      }
      if (order == VmOrder::ByStartTime) reference = cost.mean();
      const double delta = (cost.mean() - reference) / reference;
      table.add_row({base, to_string(order), fmt_double(cost.mean(), 0),
                     (order == VmOrder::ByStartTime ? std::string("—")
                                                    : fmt_percent(delta))});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("positive percentages mean that order costs more energy than "
              "the paper's start-time order.\n");
  return 0;
}
