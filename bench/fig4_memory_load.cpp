// Fig. 4 — energy reduction ratio vs the memory load of the system, where
// load is quantified as the average memory utilization of servers under FFPS
// (paper §IV-C). One series per VM count; logarithm fits.

#include <algorithm>
#include <fstream>
#include <iostream>

#include "bench_util.h"
#include "util/csv.h"

int main(int argc, char** argv) {
  using namespace esva;
  const bench::BenchArgs args = bench::parse_bench_args(
      argc, argv, "fig4_memory_load — reproduce Fig. 4 (reduction vs load)");
  bench::print_banner(
      "Fig. 4 — energy reduction ratio vs memory load",
      "as the load increases the reduction ratio decreases, with a "
      "flattening (logarithmic) decay");

  const std::vector<int> counts =
      args.quick ? std::vector<int>{100, 300} : vm_count_sweep();

  std::vector<Series> series;
  for (int num_vms : counts) {
    // Collect (load, reduction) pairs across the inter-arrival sweep, then
    // sort by load so the series reads like the paper's x-axis.
    std::vector<std::pair<double, double>> points;
    for (double interarrival : interarrival_sweep()) {
      const Scenario scenario = fig2_scenario(num_vms, interarrival);
      const PointOutcome outcome =
          run_point(scenario, bench::config_from(args));
      points.emplace_back(outcome.baseline_mem_load(),
                          outcome.headline_reduction());
    }
    std::sort(points.begin(), points.end());
    Series s;
    s.label = std::to_string(num_vms) + " VMs";
    for (const auto& [load, reduction] : points) {
      s.xs.push_back(load);
      s.ys.push_back(reduction);
    }
    series.push_back(std::move(s));
  }

  // The shared-x-grid table layout does not apply (each series has its own
  // measured loads), so print per-series tables.
  for (const Series& s : series) {
    FigureSpec spec;
    spec.title = "Fig. 4 — reduction vs memory load [" + s.label + "]";
    spec.x_label = "memory load of the system (FFPS avg util)";
    spec.y_label = "energy reduction ratio";
    spec.fit = FitModel::Logarithmic;
    spec.y_as_percent = false;
    print_figure(std::cout, spec, {s});
  }
  if (!args.csv.empty()) {
    // Flat CSV: vm_count,load,reduction.
    std::ofstream out(args.csv);
    CsvWriter csv(out);
    csv.row({"vm_count", "memory_load", "reduction"});
    for (const Series& s : series)
      for (std::size_t k = 0; k < s.xs.size(); ++k)
        csv.typed_row(s.label, s.xs[k], s.ys[k]);
  }
  return 0;
}
