// A10 — statistical rigor check: the headline reduction ratios with 95%
// bootstrap confidence intervals (the paper reports bare 5-run means). A
// claim "our algorithm saves energy" should survive its own uncertainty:
// every interval here is expected to sit strictly above zero.

#include <cstdio>

#include "bench_util.h"
#include "stats/bootstrap.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace esva;
  bench::BenchArgs args = bench::parse_bench_args(
      argc, argv, "uncertainty_report — bootstrap CIs for key reductions");
  // Bootstrap over n runs; use more runs than the paper's 5 by default so
  // the intervals mean something. --runs overrides as usual.
  if (args.runs == 5) args.runs = 15;
  bench::print_banner(
      "A10 — bootstrap confidence intervals (95%)",
      "all reduction-ratio intervals should sit strictly above zero");

  TextTable table;
  table.set_header({"scenario", "mean reduction", "95% CI", "runs",
                    "CI excludes 0"});

  struct Row {
    std::string label;
    Scenario scenario;
  };
  const std::vector<Row> rows{
      {"fig2: 100 VMs, ia=1", fig2_scenario(100, 1.0)},
      {"fig2: 100 VMs, ia=10", fig2_scenario(100, 10.0)},
      {"fig2: 500 VMs, ia=4", fig2_scenario(500, 4.0)},
      {"fig7: 100 std VMs, types 1-3, ia=4", fig7_scenario(100, 4.0, false)},
      {"fig7: 100 std VMs, all types, ia=4", fig7_scenario(100, 4.0, true)},
  };

  bool all_positive = true;
  for (const Row& row : rows) {
    ExperimentConfig config = bench::config_from(args);
    const PointOutcome outcome = run_point(row.scenario, config);
    const auto& samples =
        outcome.by_name("min-incremental").reduction_runs;
    Rng boot_rng(args.seed ^ 0xb007ull);
    const BootstrapInterval ci = bootstrap_mean(samples, boot_rng);
    const bool positive = ci.valid && ci.lo > 0.0;
    all_positive = all_positive && positive;
    table.add_row({row.label, fmt_percent(ci.point),
                   "[" + fmt_percent(ci.lo) + ", " + fmt_percent(ci.hi) + "]",
                   std::to_string(samples.size()),
                   positive ? "yes" : "NO"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("%s\n", all_positive
                          ? "verdict: the headline claim survives its "
                            "uncertainty at every probed point."
                          : "verdict: at least one interval touches zero — "
                            "inspect before citing that point.");
  return all_positive ? 0 : 1;
}
