// The original recursive 4n lazy segment tree, retained verbatim (renamed)
// as the differential-fuzz reference for the flat iterative RangeAddMaxTree
// that replaced it in src/util/segment_tree.h. Test-only: never link this
// into the library.

#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <vector>

namespace esva {

class ReferenceRangeAddMaxTree {
 public:
  /// Tree over positions 0..n-1, all initially 0. n may be 0 (empty tree).
  explicit ReferenceRangeAddMaxTree(std::size_t n) : n_(n) {
    if (n_ > 0) {
      max_.assign(4 * n_, 0.0);
      add_.assign(4 * n_, 0.0);
    }
  }

  std::size_t size() const { return n_; }

  /// Adds `delta` to every position in [lo, hi] (inclusive). Requires
  /// lo <= hi < size().
  void add(std::size_t lo, std::size_t hi, double delta) {
    assert(lo <= hi && hi < n_);
    add_impl(1, 0, n_ - 1, lo, hi, delta);
  }

  /// Maximum value over [lo, hi] (inclusive). Requires lo <= hi < size().
  double max(std::size_t lo, std::size_t hi) const {
    assert(lo <= hi && hi < n_);
    return max_impl(1, 0, n_ - 1, lo, hi);
  }

  /// Maximum over the whole range; 0 for an empty tree.
  double max_all() const { return n_ == 0 ? 0.0 : max_[1]; }

 private:
  void add_impl(std::size_t node, std::size_t nl, std::size_t nr,
                std::size_t lo, std::size_t hi, double delta) {
    if (lo <= nl && nr <= hi) {
      add_[node] += delta;
      max_[node] += delta;
      return;
    }
    const std::size_t mid = nl + (nr - nl) / 2;
    if (lo <= mid) add_impl(2 * node, nl, mid, lo, std::min(hi, mid), delta);
    if (hi > mid)
      add_impl(2 * node + 1, mid + 1, nr, std::max(lo, mid + 1), hi, delta);
    max_[node] = add_[node] + std::max(max_[2 * node], max_[2 * node + 1]);
  }

  double max_impl(std::size_t node, std::size_t nl, std::size_t nr,
                  std::size_t lo, std::size_t hi) const {
    if (lo <= nl && nr <= hi) return max_[node];
    const std::size_t mid = nl + (nr - nl) / 2;
    double best = -1e300;
    if (lo <= mid)
      best = std::max(best, max_impl(2 * node, nl, mid, lo, std::min(hi, mid)));
    if (hi > mid)
      best = std::max(best, max_impl(2 * node + 1, mid + 1, nr,
                                     std::max(lo, mid + 1), hi));
    return add_[node] + best;
  }

  std::size_t n_;
  std::vector<double> max_;
  std::vector<double> add_;
};

}  // namespace esva
