// Shared builders for test and bench instances — the single source both
// tests/test_util.h and bench/test_support.h forward to. Most tests construct
// tiny hand-checked scenarios; the property suites and the solver-certified
// benches draw random instances through random_problem().

#pragma once

#include <string>
#include <vector>

#include "cluster/catalog.h"
#include "cluster/server_spec.h"
#include "cluster/vm.h"
#include "core/problem.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace esva::testsupport {

/// A VM with the given interval and demand (CPU, mem default 1).
inline VmSpec vm(VmId id, Time start, Time end, double cpu = 1.0,
                 double mem = 1.0) {
  VmSpec spec;
  spec.id = id;
  spec.type_name = "test-vm";
  spec.demand = {cpu, mem};
  spec.start = start;
  spec.end = end;
  return spec;
}

/// A server with explicit capacities and power parameters.
inline ServerSpec server(ServerId id, double cpu, double mem, Watts p_idle,
                         Watts p_peak, double transition_time = 1.0,
                         const std::string& type = "test-server") {
  ServerSpec spec;
  spec.id = id;
  spec.type_name = type;
  spec.capacity = {cpu, mem};
  spec.p_idle = p_idle;
  spec.p_peak = p_peak;
  spec.transition_time = transition_time;
  return spec;
}

/// The workhorse test server: 10 CPU / 10 GiB, 100 W idle, 200 W peak,
/// alpha = 200 (1-minute transition). unit_run_power = 10 W per CPU unit.
inline ServerSpec basic_server(ServerId id = 0) {
  return server(id, 10.0, 10.0, 100.0, 200.0, 1.0);
}

/// A small random instance: VMs drawn from Table I types over a short
/// horizon, servers cycling Table II from the largest type down (so every VM
/// fits somewhere), transition times varied for diversity. Intended for
/// property tests and solver-certified benches.
inline ProblemInstance random_problem(Rng& rng, int num_vms = 12,
                                      int num_servers = 6,
                                      double mean_interarrival = 2.0,
                                      double mean_duration = 8.0) {
  WorkloadConfig config;
  config.num_vms = num_vms;
  config.mean_interarrival = mean_interarrival;
  config.mean_duration = mean_duration;
  config.vm_types = all_vm_types();
  std::vector<VmSpec> vms = generate_workload(config, rng);

  std::vector<ServerSpec> servers;
  const auto& types = all_server_types();
  for (int i = 0; i < num_servers; ++i) {
    const double transition_time = 0.5 + static_cast<double>(i % 3);
    const std::size_t type_index =
        types.size() - 1 - static_cast<std::size_t>(i) % types.size();
    servers.push_back(make_server(types[type_index], i, transition_time));
  }
  return make_problem(std::move(vms), std::move(servers));
}

}  // namespace esva::testsupport
