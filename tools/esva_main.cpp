// Entry point of the `esva` command-line tool; all logic lives in
// src/app/commands.{h,cpp} so it can be unit tested.

#include <iostream>

#include "app/commands.h"

int main(int argc, char** argv) {
  return esva::app::esva_main(argc, argv, std::cout, std::cerr);
}
