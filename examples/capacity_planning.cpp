// Capacity planning: for a fixed workload, sweep the fleet size and report
// energy, rejected VMs, utilization and peak power — the question a
// datacenter operator actually asks ("how many servers do I need, and what
// does over-provisioning cost in energy?").
//
//   $ ./build/examples/capacity_planning --vms 200 --interarrival 1

#include <cstdio>

#include "baselines/registry.h"
#include "cluster/datacenter.h"
#include "sim/engine.h"
#include "sim/metrics.h"
#include "stats/histogram.h"
#include "util/cli.h"
#include "util/table.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  using namespace esva;
  CliParser parser("capacity_planning — fleet-size sweep for one workload");
  parser.add_int("vms", 200, "number of VM requests");
  parser.add_double("interarrival", 1.0, "mean inter-arrival time (min)");
  parser.add_int("seed", 21, "workload seed");
  if (!parser.parse(argc, argv)) return parser.parse_error() ? 1 : 0;

  Rng rng(static_cast<std::uint64_t>(parser.get_int("seed")));
  WorkloadConfig workload;
  workload.num_vms = static_cast<int>(parser.get_int("vms"));
  workload.mean_interarrival = parser.get_double("interarrival");
  workload.mean_duration = 50.0;
  workload.vm_types = all_vm_types();
  const std::vector<VmSpec> vms = generate_workload(workload, rng);

  std::printf("workload: %zu VMs, horizon %d min\n\n", vms.size(),
              horizon_of(vms));

  TextTable table;
  table.set_header({"fleet size", "unallocated", "energy (W*min)",
                    "cpu util", "peak power (W)", "servers used"});

  const std::vector<int> fleet_sizes{20, 30, 40, 60, 80, 120};
  Histogram concurrency(0.0, 120.0, 12);
  bool concurrency_recorded = false;

  for (int fleet_size : fleet_sizes) {
    Rng fleet_rng(1000 + static_cast<std::uint64_t>(fleet_size));
    std::vector<ServerSpec> servers =
        make_random_fleet(fleet_size, all_server_types(), 1.0, fleet_rng);
    const ProblemInstance problem = make_problem(vms, std::move(servers));

    AllocatorPtr allocator = make_allocator("min-incremental");
    Rng alloc_rng(5);
    const Allocation alloc = allocator->allocate(problem, alloc_rng);
    const AllocationMetrics metrics = compute_metrics(problem, alloc);
    const SimulationResult sim = SimulationEngine(problem, alloc).run(true);

    Watts peak = 0.0;
    for (const PowerSample& s : sim.samples) {
      peak = std::max(peak, s.total_power);
      if (!concurrency_recorded)
        concurrency.add(static_cast<double>(s.running_vms));
    }
    concurrency_recorded = true;  // same workload; record once

    table.add_row({std::to_string(fleet_size),
                   std::to_string(metrics.unallocated),
                   fmt_double(metrics.cost.total(), 0),
                   fmt_percent(metrics.utilization.avg_cpu),
                   fmt_double(peak, 0),
                   std::to_string(metrics.servers_used)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("concurrent running VMs over time (smallest feasible fleet):\n%s",
              concurrency.render(40).c_str());
  std::printf(
      "\nreading: the smallest fleet that leaves no VM unallocated is the\n"
      "capacity floor; growing the fleet beyond it barely changes energy\n"
      "(min-incremental refuses to wake servers it does not need), but\n"
      "adds headroom for demand spikes.\n");
  return 0;
}
