// Compare every allocation policy in the registry on a paper-style workload.
//
//   $ ./build/examples/policy_comparison --vms 300 --interarrival 2 --runs 5

#include <cstdio>

#include "baselines/registry.h"
#include "sim/experiment.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace esva;
  CliParser parser(
      "policy_comparison — every allocator on one paper-style scenario");
  parser.add_int("vms", 200, "number of VM requests");
  parser.add_double("interarrival", 2.0, "mean inter-arrival time (min)");
  parser.add_double("duration", 50.0, "mean VM duration (min)");
  parser.add_int("runs", 5, "random runs");
  parser.add_int("seed", 42, "master seed");
  if (!parser.parse(argc, argv)) return parser.parse_error() ? 1 : 0;

  Scenario scenario = default_scenario(
      static_cast<int>(parser.get_int("vms")), parser.get_double("interarrival"));
  scenario.workload.mean_duration = parser.get_double("duration");

  ExperimentConfig config;
  config.allocator_names = allocator_names();
  config.runs = static_cast<int>(parser.get_int("runs"));
  config.seed = static_cast<std::uint64_t>(parser.get_int("seed"));

  const PointOutcome outcome = run_point(scenario, config);

  std::printf("scenario: %d VMs on %d servers, inter-arrival %.1f min, "
              "duration %.0f min, %d runs\n\n",
              scenario.workload.num_vms, scenario.num_servers,
              scenario.workload.mean_interarrival,
              scenario.workload.mean_duration, config.runs);

  TextTable table;
  table.set_header({"allocator", "energy (W*min)", "vs ffps", "cpu util",
                    "mem util", "servers used"});
  for (const AllocatorAggregate& agg : outcome.allocators) {
    const bool is_baseline = agg.name == outcome.baseline_name;
    table.add_row({agg.name, fmt_double(agg.total_cost.mean(), 0),
                   is_baseline
                       ? std::string("—")
                       : fmt_percent(agg.reduction_vs_baseline.mean()),
                   fmt_percent(agg.cpu_util.mean()),
                   fmt_percent(agg.mem_util.mean()),
                   fmt_double(agg.servers_used.mean(), 1)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
