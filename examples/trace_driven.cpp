// Trace-driven allocation: generate (or load) a workload trace and a server
// fleet, allocate, and report. Demonstrates the CSV trace format used to
// make experiments shareable and bit-reproducible.
//
//   # generate traces, allocate, and keep the traces for re-use:
//   $ ./build/examples/trace_driven --save-prefix /tmp/demo
//   # re-run later from the saved traces:
//   $ ./build/examples/trace_driven --vm-trace /tmp/demo_vms.csv
//         --server-trace /tmp/demo_servers.csv

#include <cstdio>

#include "baselines/registry.h"
#include "cluster/datacenter.h"
#include "sim/engine.h"
#include "sim/metrics.h"
#include "util/cli.h"
#include "util/table.h"
#include "workload/generator.h"
#include "workload/trace.h"

int main(int argc, char** argv) {
  using namespace esva;
  CliParser parser("trace_driven — allocate a CSV workload trace");
  parser.add_string("vm-trace", "", "input VM trace (generated if empty)");
  parser.add_string("server-trace", "", "input server trace");
  parser.add_string("save-prefix", "", "write <prefix>_vms.csv / _servers.csv");
  parser.add_string("allocator", "min-incremental", "policy to run");
  parser.add_int("vms", 150, "generated workload size");
  parser.add_int("servers", 75, "generated fleet size");
  parser.add_int("seed", 7, "generation seed");
  if (!parser.parse(argc, argv)) return parser.parse_error() ? 1 : 0;

  Rng rng(static_cast<std::uint64_t>(parser.get_int("seed")));

  std::vector<VmSpec> vms;
  std::vector<ServerSpec> servers;
  if (!parser.get_string("vm-trace").empty()) {
    vms = load_vm_trace(parser.get_string("vm-trace"));
    std::printf("loaded %zu VMs from %s\n", vms.size(),
                parser.get_string("vm-trace").c_str());
  } else {
    WorkloadConfig config;
    config.num_vms = static_cast<int>(parser.get_int("vms"));
    config.mean_interarrival = 2.0;
    config.mean_duration = 50.0;
    config.vm_types = all_vm_types();
    vms = generate_workload(config, rng);
    std::printf("generated %zu VMs\n", vms.size());
  }
  if (!parser.get_string("server-trace").empty()) {
    servers = load_server_trace(parser.get_string("server-trace"));
    std::printf("loaded %zu servers from %s\n", servers.size(),
                parser.get_string("server-trace").c_str());
  } else {
    servers = make_random_fleet(static_cast<int>(parser.get_int("servers")),
                                all_server_types(), 1.0, rng);
    std::printf("generated %zu servers\n", servers.size());
  }

  if (!parser.get_string("save-prefix").empty()) {
    const std::string prefix = parser.get_string("save-prefix");
    save_vm_trace(prefix + "_vms.csv", vms);
    save_server_trace(prefix + "_servers.csv", servers);
    std::printf("traces saved to %s_{vms,servers}.csv\n", prefix.c_str());
  }

  const ProblemInstance problem =
      make_problem(std::move(vms), std::move(servers));
  if (std::string err = validate_problem(problem); !err.empty()) {
    std::fprintf(stderr, "invalid instance: %s\n", err.c_str());
    return 1;
  }

  AllocatorPtr allocator = make_allocator(parser.get_string("allocator"));
  Rng alloc_rng = rng.split();
  const Allocation alloc = allocator->allocate(problem, alloc_rng);
  const AllocationMetrics metrics = compute_metrics(problem, alloc);

  std::printf("\nallocator: %s\n", allocator->name().c_str());
  TextTable table;
  table.set_header({"metric", "value"});
  table.add_row({"total energy (W*min)", fmt_double(metrics.cost.total(), 0)});
  table.add_row({"  run component", fmt_double(metrics.cost.breakdown.run, 0)});
  table.add_row({"  idle component", fmt_double(metrics.cost.breakdown.idle, 0)});
  table.add_row(
      {"  transition component", fmt_double(metrics.cost.breakdown.transition, 0)});
  table.add_row({"avg CPU utilization", fmt_percent(metrics.utilization.avg_cpu)});
  table.add_row({"avg memory utilization", fmt_percent(metrics.utilization.avg_mem)});
  table.add_row({"servers used", std::to_string(metrics.servers_used)});
  table.add_row({"unallocated VMs", std::to_string(metrics.unallocated)});
  std::printf("%s", table.render().c_str());

  // Peak datacenter power, from the event-driven simulator's samples.
  const SimulationResult sim = SimulationEngine(problem, alloc).run(true);
  Watts peak = 0.0;
  Time peak_at = 0;
  for (const PowerSample& s : sim.samples) {
    if (s.total_power > peak) {
      peak = s.total_power;
      peak_at = s.t;
    }
  }
  std::printf("\npeak draw %.0f W at t=%d min (%d active servers)\n", peak,
              peak_at, peak_at > 0 ? sim.samples[static_cast<std::size_t>(peak_at - 1)].active_servers : 0);
  return 0;
}
