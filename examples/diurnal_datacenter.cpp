// A day in a datacenter: diurnal arrivals (day/night request cycle), the
// paper's allocator vs FFPS, an hour-by-hour power profile, and an optional
// migration post-pass — the extension modules working together.
//
//   $ ./build/examples/diurnal_datacenter --vms 400 --amplitude 0.8

#include <cstdio>

#include "baselines/registry.h"
#include "cluster/datacenter.h"
#include "ext/migration.h"
#include "sim/engine.h"
#include "sim/metrics.h"
#include "util/cli.h"
#include "util/table.h"
#include "workload/diurnal.h"

int main(int argc, char** argv) {
  using namespace esva;
  CliParser parser("diurnal_datacenter — day/night workload walkthrough");
  parser.add_int("vms", 400, "number of requests (~one day at defaults)");
  parser.add_double("amplitude", 0.8, "day/night swing in [0,1)");
  parser.add_int("servers", 80, "fleet size");
  parser.add_int("seed", 17, "seed");
  parser.add_bool("migrate", "run the migration post-pass as well");
  if (!parser.parse(argc, argv)) return parser.parse_error() ? 1 : 0;

  Rng rng(static_cast<std::uint64_t>(parser.get_int("seed")));
  DiurnalConfig config;
  config.num_vms = static_cast<int>(parser.get_int("vms"));
  config.amplitude = parser.get_double("amplitude");
  config.vm_types = all_vm_types();
  std::vector<VmSpec> vms = generate_diurnal_workload(config, rng);
  std::vector<ServerSpec> servers =
      make_random_fleet(static_cast<int>(parser.get_int("servers")),
                        all_server_types(), 1.0, rng);
  const ProblemInstance problem =
      make_problem(std::move(vms), std::move(servers));
  std::printf("diurnal workload: %zu VMs over %d min (%.1f cycles)\n\n",
              problem.num_vms(), problem.horizon,
              static_cast<double>(problem.horizon) / config.period);

  TextTable table;
  table.set_header(
      {"allocator", "energy (W*min)", "cpu util", "servers used"});
  Allocation ours;
  for (const std::string name : {"min-incremental", "ffps"}) {
    Rng alloc_rng = rng.split();
    Allocation alloc = make_allocator(name)->allocate(problem, alloc_rng);
    const AllocationMetrics metrics = compute_metrics(problem, alloc);
    table.add_row({name, fmt_double(metrics.cost.total(), 0),
                   fmt_percent(metrics.utilization.avg_cpu),
                   std::to_string(metrics.servers_used)});
    if (name == "min-incremental") ours = std::move(alloc);
  }
  std::printf("%s\n", table.render().c_str());

  // Hour-by-hour power profile of the heuristic's allocation.
  const SimulationResult sim = SimulationEngine(problem, ours).run(true);
  std::printf("hourly mean power draw (min-incremental):\n");
  const Time hours = (problem.horizon + 59) / 60;
  double peak_hour_power = 0.0;
  std::vector<double> hourly(static_cast<std::size_t>(hours), 0.0);
  for (const PowerSample& s : sim.samples)
    hourly[static_cast<std::size_t>((s.t - 1) / 60)] += s.total_power / 60.0;
  for (double w : hourly) peak_hour_power = std::max(peak_hour_power, w);
  for (Time h = 0; h < hours; ++h) {
    const double watts = hourly[static_cast<std::size_t>(h)];
    const int bar = peak_hour_power > 0
                        ? static_cast<int>(40.0 * watts / peak_hour_power)
                        : 0;
    std::printf("  h%02d %6.0f W %s\n", h, watts,
                std::string(static_cast<std::size_t>(bar), '#').c_str());
  }

  if (parser.get_bool("migrate")) {
    const MigrationResult migrated = optimize_with_migration(problem, ours);
    std::printf("\nmigration post-pass: %d moves, %.0f -> %.0f W*min "
                "(net %.0f with overhead, %s reduction)\n",
                migrated.moves, migrated.energy_before, migrated.energy_after,
                migrated.net_total(),
                fmt_percent(migrated.net_reduction()).c_str());
  }
  return 0;
}
