// The exact-solver workflow on a small instance: build the boolean ILP
// (Eqs. 8-14), export it in CPLEX-LP format for external solvers, solve it
// in-tree with branch-and-bound, and compare the heuristic against the
// certified optimum.
//
//   $ ./build/examples/ilp_small --vms 8 --servers 4 --lp /tmp/instance.lp

#include <cstdio>

#include "baselines/registry.h"
#include "ilp/branch_and_bound.h"
#include "ilp/lp_export.h"
#include "ilp/model.h"
#include "ilp/validate.h"
#include "util/cli.h"
#include "util/table.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  using namespace esva;
  CliParser parser("ilp_small — exact solve + LP export on a tiny instance");
  parser.add_int("vms", 8, "number of VMs (keep <= ~12)");
  parser.add_int("servers", 4, "number of servers (keep <= ~5)");
  parser.add_int("seed", 3, "instance seed");
  parser.add_string("lp", "", "write the CPLEX-LP model to this path");
  if (!parser.parse(argc, argv)) return parser.parse_error() ? 1 : 0;

  // Draw a tiny instance (servers from the large end of Table II so every
  // VM type fits somewhere).
  Rng rng(static_cast<std::uint64_t>(parser.get_int("seed")));
  WorkloadConfig workload;
  workload.num_vms = static_cast<int>(parser.get_int("vms"));
  workload.mean_interarrival = 2.0;
  workload.mean_duration = 6.0;
  workload.vm_types = all_vm_types();
  std::vector<VmSpec> vms = generate_workload(workload, rng);
  std::vector<ServerSpec> servers;
  const auto& types = all_server_types();
  for (int i = 0; i < parser.get_int("servers"); ++i)
    servers.push_back(make_server(
        types[types.size() - 1 - static_cast<std::size_t>(i) % types.size()],
        i, 1.0));
  const ProblemInstance problem =
      make_problem(std::move(vms), std::move(servers));

  // 1. The explicit ILP.
  const IlpModel model = build_ilp(problem);
  std::printf("ILP: %zu variables (%zu x, %zu y, %zu z), %zu constraints\n",
              model.num_vars(), model.num_x(), model.num_y(), model.num_z(),
              model.rows.size());
  if (!parser.get_string("lp").empty()) {
    save_lp(parser.get_string("lp"), model);
    std::printf("model written to %s (solve with e.g. `highs %s`)\n",
                parser.get_string("lp").c_str(),
                parser.get_string("lp").c_str());
  }

  // 2. Exact solve.
  const ExactResult exact = solve_exact(problem);
  if (!exact.feasible) {
    std::printf("instance infeasible\n");
    return 0;
  }
  std::printf("exact optimum: %.1f watt-minutes (%s, %llu nodes)\n",
              exact.cost, exact.optimal ? "certified" : "node-limited",
              static_cast<unsigned long long>(exact.nodes_explored));

  // Cross-check the optimum against the ILP objective.
  const auto active = derive_active_sets(problem, exact.best);
  const auto values = to_variable_assignment(model, problem, exact.best, active);
  std::printf("ILP objective at that solution: %.1f; constraint check: %s\n",
              model.objective_value(values),
              model.first_violation(values).empty() ? "all satisfied"
                                                    : "VIOLATED");

  // 3. Heuristics vs the optimum.
  TextTable table;
  table.set_header({"allocator", "energy (W*min)", "gap vs optimal"});
  table.add_row({"exact (B&B)", fmt_double(exact.cost, 1), "0.00%"});
  for (const std::string& name :
       {std::string("min-incremental"), std::string("ffps"),
        std::string("best-fit-cpu")}) {
    Rng alloc_rng(11);
    const Allocation alloc = make_allocator(name)->allocate(problem, alloc_rng);
    if (!alloc.fully_allocated()) continue;
    const Energy cost = evaluate_cost(problem, alloc).total();
    table.add_row({name, fmt_double(cost, 1),
                   fmt_percent(cost / exact.cost - 1.0)});
  }
  std::printf("\n%s", table.render().c_str());
  return 0;
}
