// Quickstart: build a tiny datacenter by hand, allocate with the paper's
// heuristic, and read the energy report. Mirrors README's "5-minute tour".
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "baselines/ffps.h"
#include "cluster/catalog.h"
#include "core/min_incremental.h"
#include "sim/engine.h"
#include "sim/metrics.h"
#include "util/table.h"

int main() {
  using namespace esva;

  // 1. A fleet: two small blades and one large box (Table II types).
  std::vector<ServerSpec> servers{
      make_server(all_server_types()[0], 0, /*transition_time=*/1.0),
      make_server(all_server_types()[0], 1, 1.0),
      make_server(all_server_types()[4], 2, 1.0),
  };

  // 2. Six VM requests with start/finish times (minutes) and Table I demands.
  const auto& types = all_vm_types();
  auto request = [&](VmId id, const char* type_name, Time start, Time end) {
    for (const VmType& t : types) {
      if (t.name == type_name) {
        VmSpec vm;
        vm.id = id;
        vm.type_name = t.name;
        vm.demand = t.demand;
        vm.start = start;
        vm.end = end;
        return vm;
      }
    }
    std::fprintf(stderr, "unknown type %s\n", type_name);
    std::exit(1);
  };
  std::vector<VmSpec> vms{
      request(0, "m1.small", 1, 60),    request(1, "m1.large", 10, 90),
      request(2, "c1.medium", 15, 45),  request(3, "m1.xlarge", 50, 170),
      request(4, "m2.xlarge", 80, 200), request(5, "m1.medium", 160, 260),
  };

  const ProblemInstance problem = make_problem(std::move(vms), std::move(servers));
  std::printf("instance: %zu VMs on %zu servers, horizon %d min\n\n",
              problem.num_vms(), problem.num_servers(), problem.horizon);

  // 3. Allocate with the paper's heuristic and with the FFPS baseline.
  Rng rng(42);
  MinIncrementalAllocator heuristic;
  const Allocation ours = heuristic.allocate(problem, rng);
  FfpsAllocator ffps;
  const Allocation baseline = ffps.allocate(problem, rng);

  // 4. Compare energy (Eq. 17 accounting, optimal power-state policy).
  TextTable table;
  table.set_header({"vm", "type", "interval", "ours -> server",
                    "ffps -> server"});
  for (std::size_t j = 0; j < problem.num_vms(); ++j) {
    const VmSpec& vm = problem.vms[j];
    table.add_row({std::to_string(vm.id), vm.type_name,
                   "[" + std::to_string(vm.start) + "," +
                       std::to_string(vm.end) + "]",
                   std::to_string(ours.assignment[j]),
                   std::to_string(baseline.assignment[j])});
  }
  std::printf("%s\n", table.render().c_str());

  const CostReport ours_cost = evaluate_cost(problem, ours);
  const CostReport ffps_cost = evaluate_cost(problem, baseline);
  std::printf("energy (watt-minutes): ours %.0f vs ffps %.0f -> reduction %s\n",
              ours_cost.total(), ffps_cost.total(),
              fmt_percent(energy_reduction_ratio(ffps_cost.total(),
                                                 ours_cost.total()))
                  .c_str());

  // 5. Cross-check with the discrete-event simulator.
  const SimulationResult simulated = SimulationEngine(problem, ours).run();
  std::printf("simulator cross-check: %.0f watt-minutes (run %.0f, idle %.0f,"
              " transitions %.0f)\n",
              simulated.total_energy(), simulated.total.run,
              simulated.total.idle, simulated.total.transition);
  return 0;
}
